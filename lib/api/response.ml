module Json = Obs.Json

type cache_status = Hit | Miss | Uncached

type provenance = { solver : string; cache : cache_status }

type worker_row = {
  speed : float;
  data : float;
  fraction : float;
  comm_start : float;
  comm_end : float;
  compute_start : float;
  compute_end : float;
}

type body =
  | Schedule of { makespan : float; workers : worker_row array }
  | Ratio of { makespan : float; ideal : float; ratio : float; done_fraction : float }
  | Plan of { makespan : float; allocation : float array; fractions : float array }
  | Multi_load of {
      throughput : float;
      rates : float array;
      admitted : float array;
      utilization : float;
    }
  | Table of { experiment : string; header : string list; rows : Obs.Json.t }
  | Error of { code : string; message : string }

type t = { body : body; provenance : provenance }

let schema_version = 1

let error ?(solver = "serve") ~code message =
  { body = Error { code; message }; provenance = { solver; cache = Uncached } }

let is_error t = match t.body with Error _ -> true | _ -> false

(* --- encoding ----------------------------------------------------------- *)

let kind_name = function
  | Schedule _ -> "schedule"
  | Ratio _ -> "ratio"
  | Plan _ -> "plan"
  | Multi_load _ -> "multi_load"
  | Table _ -> "table"
  | Error _ -> "error"

let floats_json a = Json.List (Array.to_list (Array.map (fun f -> Json.Float f) a))

let worker_json w =
  Json.Obj
    [
      ("speed", Json.Float w.speed);
      ("data", Json.Float w.data);
      ("fraction", Json.Float w.fraction);
      ("comm_start", Json.Float w.comm_start);
      ("comm_end", Json.Float w.comm_end);
      ("compute_start", Json.Float w.compute_start);
      ("compute_end", Json.Float w.compute_end);
    ]

let body_fields = function
  | Schedule { makespan; workers } ->
      [
        ("makespan", Json.Float makespan);
        ("workers", Json.List (Array.to_list (Array.map worker_json workers)));
      ]
  | Ratio { makespan; ideal; ratio; done_fraction } ->
      [
        ("makespan", Json.Float makespan);
        ("ideal", Json.Float ideal);
        ("ratio", Json.Float ratio);
        ("done_fraction", Json.Float done_fraction);
      ]
  | Plan { makespan; allocation; fractions } ->
      [
        ("makespan", Json.Float makespan);
        ("allocation", floats_json allocation);
        ("fractions", floats_json fractions);
      ]
  | Multi_load { throughput; rates; admitted; utilization } ->
      [
        ("throughput", Json.Float throughput);
        ("rates", floats_json rates);
        ("admitted", floats_json admitted);
        ("utilization", Json.Float utilization);
      ]
  | Table { experiment; header; rows } ->
      [
        ("experiment", Json.String experiment);
        ("header", Json.List (List.map (fun h -> Json.String h) header));
        ("rows", rows);
      ]
  | Error { code; message } ->
      [ ("error", Json.String code); ("message", Json.String message) ]

let to_json t =
  Json.Obj
    ([
       ("schema_version", Json.Int schema_version);
       ("kind", Json.String (kind_name t.body));
       ("provenance", Json.Obj [ ("solver", Json.String t.provenance.solver) ]);
     ]
    @ body_fields t.body)

let to_line t = Json.to_compact (to_json t)

(* --- decoding ----------------------------------------------------------- *)

let number = function
  | Json.Int i -> Some (float_of_int i)
  | Json.Float f -> Some f
  | _ -> None

let num_field fields key =
  match List.assoc_opt key fields with
  | Some j -> (
      match number j with
      | Some f -> Ok f
      | None -> Error (Printf.sprintf "%s must be a number" key))
  | None -> Error (Printf.sprintf "missing field %s" key)

let floats_field fields key =
  match List.assoc_opt key fields with
  | Some (Json.List items) ->
      let rec go acc = function
        | [] -> Ok (Array.of_list (List.rev acc))
        | item :: rest -> (
            match number item with
            | Some f -> go (f :: acc) rest
            | None -> Error (Printf.sprintf "%s must contain only numbers" key))
      in
      go [] items
  | Some _ -> Error (Printf.sprintf "%s must be a list" key)
  | None -> Error (Printf.sprintf "missing field %s" key)

let string_field fields key =
  match List.assoc_opt key fields with
  | Some (Json.String s) -> Ok s
  | Some _ -> Error (Printf.sprintf "%s must be a string" key)
  | None -> Error (Printf.sprintf "missing field %s" key)

let worker_of_json = function
  | Json.Obj fields ->
      let ( let* ) = Result.bind in
      let* speed = num_field fields "speed" in
      let* data = num_field fields "data" in
      let* fraction = num_field fields "fraction" in
      let* comm_start = num_field fields "comm_start" in
      let* comm_end = num_field fields "comm_end" in
      let* compute_start = num_field fields "compute_start" in
      let* compute_end = num_field fields "compute_end" in
      Ok { speed; data; fraction; comm_start; comm_end; compute_start; compute_end }
  | _ -> Error "workers must contain objects"

let of_json json =
  let ( let* ) = Result.bind in
  match json with
  | Json.Obj fields ->
      let* () =
        match List.assoc_opt "schema_version" fields with
        | Some (Json.Int v) when v = schema_version -> Ok ()
        | Some (Json.Int v) -> Error (Printf.sprintf "unsupported schema_version %d" v)
        | _ -> Error "missing or malformed schema_version"
      in
      let* kind = string_field fields "kind" in
      let* solver =
        match List.assoc_opt "provenance" fields with
        | Some (Json.Obj pf) -> string_field pf "solver"
        | _ -> Error "missing or malformed provenance"
      in
      let* body =
        match kind with
        | "schedule" ->
            let* makespan = num_field fields "makespan" in
            let* workers =
              match List.assoc_opt "workers" fields with
              | Some (Json.List items) ->
                  let rec go acc = function
                    | [] -> Ok (Array.of_list (List.rev acc))
                    | item :: rest ->
                        let* w = worker_of_json item in
                        go (w :: acc) rest
                  in
                  go [] items
              | _ -> Error "missing or malformed workers"
            in
            Ok (Schedule { makespan; workers })
        | "ratio" ->
            let* makespan = num_field fields "makespan" in
            let* ideal = num_field fields "ideal" in
            let* ratio = num_field fields "ratio" in
            let* done_fraction = num_field fields "done_fraction" in
            Ok (Ratio { makespan; ideal; ratio; done_fraction })
        | "plan" ->
            let* makespan = num_field fields "makespan" in
            let* allocation = floats_field fields "allocation" in
            let* fractions = floats_field fields "fractions" in
            Ok (Plan { makespan; allocation; fractions })
        | "multi_load" ->
            let* throughput = num_field fields "throughput" in
            let* rates = floats_field fields "rates" in
            let* admitted = floats_field fields "admitted" in
            let* utilization = num_field fields "utilization" in
            Ok (Multi_load { throughput; rates; admitted; utilization })
        | "table" ->
            let* experiment = string_field fields "experiment" in
            let* header =
              match List.assoc_opt "header" fields with
              | Some (Json.List items) ->
                  let rec go acc = function
                    | [] -> Ok (List.rev acc)
                    | Json.String s :: rest -> go (s :: acc) rest
                    | _ -> Error "header must contain only strings"
                  in
                  go [] items
              | _ -> Error "missing or malformed header"
            in
            let* rows =
              match List.assoc_opt "rows" fields with
              | Some rows -> Ok rows
              | None -> Error "missing field rows"
            in
            Ok (Table { experiment; header; rows })
        | "error" ->
            let* code = string_field fields "error" in
            let* message = string_field fields "message" in
            Ok (Error { code; message })
        | other -> Error (Printf.sprintf "unknown response kind %S" other)
      in
      Ok { body; provenance = { solver; cache = Uncached } }
  | _ -> Error "response must be a JSON object"
