(** Stable cache keys for the serve daemon.

    Two requests that must produce byte-identical responses must map to
    the same key.  The fingerprint therefore normalizes the request the
    same way evaluation does: the platform is {e materialized} (profile
    draws expanded, speeds sorted by the star's non-decreasing-speed
    convention) and every float is quantized through a round-trippable
    decimal rendering, so [0.1 +. 0.2] and [0.30000000000000004] only
    collide when they are the same double.  Permuted-but-equal speed
    vectors share a key; a profile request and the explicit speed
    vector it draws share a key too. *)

val quantize : float -> string
(** Canonical decimal rendering of a double (shortest round-trippable
    form; ["nan"]/["inf"] never appear in validated requests). *)

val of_request : Request.t -> string
(** The cache key.  Materializes the platform via {!Request.star} —
    call only on validated requests. *)
