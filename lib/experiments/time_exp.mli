(** Experiment E4 (extension): execution time, not just volume.

    Sweeps the network speed (uniform link bandwidth, in domain cells
    per time unit) and reports the makespan of the Heterogeneous Blocks
    layout against demand-driven [Commhom/k], normalized by the
    compute-only bound [n²/Σs].  With a fast network both are
    compute-bound and close; as links slow down the redundant transfers
    of the homogeneous strategy push its makespan away — the time-domain
    restatement of the paper's volume argument, including where the gap
    opens. *)

type row = {
  bandwidth : float;
  het_ratio : float;  (** makespan / compute bound, mean over trials *)
  hom_ratio : float;
  het_comm_share : float;  (** het comm makespan / het makespan *)
}

val run :
  ?p:int ->
  ?n:float ->
  ?bandwidths:float list ->
  ?trials:int ->
  ?seed:int ->
  ?domains:int ->
  Platform.Profiles.t ->
  row list
(** Trials run on the shared domain pool with pre-split per-trial RNGs;
    output is identical at any [domains]. *)

val print : profile:string -> row list -> unit
