(** Million-scale fault-injected MapReduce simulation (single run).

    The same deterministic workload the bench's [des_throughput]
    section gates on, exposed as a catalog experiment so it can be run
    — and profiled with [nldl profile] — at any scale.  With metrics
    enabled, the scheduler reports per-event-type counts, sampled heap
    depth and wait/service/fetch/retry latency distributions; the
    outcome's schedule exports as a downsampled Gantt through
    {!Mapreduce.Timeline.chrome}. *)

type result = {
  workers : int;
  tasks : int;
  events : int;
  seconds : float;
  events_per_sec : float;
  makespan : float;
  retries : int;
  crashes : int;
  duplicates : int;
  unfinished : int;
}

val run :
  ?workers:int ->
  ?tasks:int ->
  ?crash_rate:float ->
  ?slowdown_rate:float ->
  ?fetch_failure:float ->
  ?horizon:float ->
  ?seed:int ->
  unit ->
  result * Mapreduce.Scheduler.outcome
(** Defaults reproduce the bench workload: 10^5 uniform workers,
    10^6 unit tasks, 0.1% crash rate (with recovery), 1% slowdown,
    1% fetch failures, seed 42. *)

val header : string list
val row : result -> string list
val print : result -> unit
