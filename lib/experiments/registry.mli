(** First-class experiment registry.

    Each CLI subcommand is an {!entry} value: a name, a one-line
    synopsis, and a Cmdliner term evaluating to a thunk that runs the
    experiment, prints its human-readable report, and returns its
    series as an {!output} table (or [None] for free-form commands).
    The driver builds its subcommand group by folding {!to_cmd} over
    {!Catalog.all} — adding an experiment means adding one entry to the
    catalog, never editing the driver's dispatch.

    {!to_cmd} equips every entry uniformly with:
    - [-v]/[--verbose] log verbosity (repeatable);
    - [--trace FILE] Chrome trace-event JSON (Perfetto-loadable) and
      [--metrics[=FILE]] runtime-metrics snapshot;
    - [--csv FILE] and [--json FILE] dumps of the returned {!output}.

    {b Optional-argument convention} (shared arg terms below mirror it;
    every experiment's [run] follows the same spellings):
    - [?processor_counts] — worker counts to sweep (flag [-p P,...]);
    - [?trials] — repetitions per data point (flag [--trials T]; the
      one-off [?seeds] spelling is deprecated and gone);
    - [?seed] — root PRNG seed (flag [--seed S]);
    - [?domains] — domain-pool size for parallel trial loops. *)

type output = {
  header : string list;
  rows : string list list;  (** same width as [header] *)
  json : Obs.Json.t;
}

type entry = {
  name : string;
  synopsis : string;
  term : (unit -> output option * int) Cmdliner.Term.t;
      (** thunk result: optional table, exit status *)
}

val table : header:string list -> rows:string list list -> output
(** The standard way to return a series: the JSON view is derived from
    the string table (numeric-looking cells become numbers), and
    {!to_cmd}'s [--json] wraps it in the canonical [Api.Response]
    envelope.  Lint rule H308 forbids hand-rolling [Obs.Json]
    structures in [lib/experiments] for exactly this reason. *)

val output : header:string list -> rows:string list list -> json:Obs.Json.t -> output
[@@ocaml.deprecated
  "free-form json output is a compatibility shim for one release; use Registry.table \
   so the Api.Response envelope owns the schema"]
(** @deprecated Build the JSON view by hand.  Kept one release so
    out-of-tree entries keep compiling; new code uses {!table}. *)

val entry : name:string -> synopsis:string -> (unit -> output option) Cmdliner.Term.t -> entry
(** Ordinary experiment: always exits 0. *)

val gated : name:string -> synopsis:string -> (unit -> output option * int) Cmdliner.Term.t -> entry
(** Command whose thunk also decides the process exit status (e.g.
    [nldl lint] failing on new findings); a non-zero status is applied
    with [exit] after the trace/metrics/csv/json flushes. *)

(** {1 Shared argument terms} *)

val profile : Platform.Profiles.t Cmdliner.Term.t
(** [--profile PROFILE]: homogeneous, uniform, lognormal or bimodal;
    defaults to the paper's uniform profile. *)

val trials : ?default:int -> unit -> int Cmdliner.Term.t
(** [--trials T], default 100. *)

val seed : int Cmdliner.Term.t
(** [--seed S], default 20130520. *)

val processor_counts : default:int list -> int list Cmdliner.Term.t
(** [-p P,...]. *)

val domains : int option Cmdliner.Term.t
(** [--domains D]: domain-pool size for parallel trial loops; default
    lets the experiment pick. *)

(** {1 Driver assembly} *)

val to_cmd : entry -> unit Cmdliner.Cmd.t
(** Wrap an entry into a complete subcommand: logging and
    trace/metrics setup run before the body, the trace/metrics files
    are flushed after it, and [--csv]/[--json] write the returned
    table (a diagnostic is printed when the flag is given but the
    command returned no table). *)
