module Rng = Numerics.Rng
module Profiles = Platform.Profiles
module Sample_sort = Sortlib.Sample_sort

type row = {
  n : int;
  p : int;
  s : int;
  predicted_gap : float;
  measured_gap : float;
  max_bucket_ratio : float;
  envelope : float;
  speedup : float;
  ideal_speedup : float;
}

type hetero_row = {
  p : int;
  n : int;
  imbalance : float;
  naive_imbalance : float;
}

let run ?(sizes = [ 10_000; 100_000; 1_000_000 ]) ?(processor_counts = [ 4; 16; 64 ])
    ?(seed = 11) () =
  let rng = Rng.create ~seed () in
  let rows = ref [] in
  List.iter
    (fun n ->
      List.iter
        (fun p ->
          Obs.Trace.begin_span "sorting.trial";
          let trial_rng = Rng.split rng in
          let keys = Array.init n (fun _ -> Rng.float trial_rng) in
          let s = Sample_sort.default_oversampling ~n in
          let splitters =
            Sample_sort.choose_splitters ~cmp:Float.compare trial_rng keys ~p ~s
          in
          let buckets = Sample_sort.partition ~cmp:Float.compare keys ~splitters in
          let bucket_sizes = Array.map Array.length buckets.Sample_sort.contents in
          let star = Profiles.generate trial_rng ~p Profiles.paper_homogeneous in
          let timing = Sortlib.Parallel_model.evaluate star ~bucket_sizes ~s in
          rows :=
            {
              n;
              p;
              s;
              predicted_gap = Dlt.Fraction.sorting_gap ~n:(float_of_int n) ~p;
              measured_gap = 1. -. timing.Sortlib.Parallel_model.divisible_fraction;
              max_bucket_ratio = Sample_sort.max_bucket_ratio buckets;
              envelope = Sample_sort.theoretical_envelope ~n;
              speedup = timing.Sortlib.Parallel_model.speedup;
              ideal_speedup = Platform.Star.total_speed star;
            }
            :: !rows;
          Obs.Trace.end_span "sorting.trial")
        processor_counts)
    sizes;
  List.rev !rows

let naive_imbalance star ~n =
  (* Equal-size buckets on a heterogeneous platform: the imbalance the
     Section 3.2 splitters remove. *)
  let p = Platform.Star.size star in
  let per = float_of_int n /. float_of_int p in
  let work = if per <= 1. then 0. else per *. (log per /. log 2.) in
  let times =
    Array.map
      (fun (proc : Platform.Processor.t) -> work /. proc.Platform.Processor.speed)
      (Platform.Star.workers star)
  in
  let tmax = Array.fold_left Float.max 0. times in
  let tmin = Array.fold_left Float.min infinity times in
  if tmin > 0. then (tmax -. tmin) /. tmin else infinity

let run_hetero ?(sizes = [ 200_000 ]) ?(processor_counts = [ 4; 16; 64 ]) ?(trials = 5)
    ?(seed = 13) () =
  let rng = Rng.create ~seed () in
  let rows = ref [] in
  List.iter
    (fun n ->
      List.iter
        (fun p ->
          let imbalances = Array.make trials 0. in
          let naive = Array.make trials 0. in
          for t = 0 to trials - 1 do
            Obs.Trace.begin_span "sorting.hetero.trial";
            let trial_rng = Rng.split rng in
            let star = Profiles.generate trial_rng ~p Profiles.paper_uniform in
            let keys = Array.init n (fun _ -> Rng.float trial_rng) in
            let result = Sortlib.Hetero_sort.run trial_rng star ~keys in
            imbalances.(t) <- result.Sortlib.Hetero_sort.imbalance;
            naive.(t) <- naive_imbalance star ~n;
            Obs.Trace.end_span "sorting.hetero.trial"
          done;
          rows :=
            {
              p;
              n;
              imbalance = Numerics.Stats.mean imbalances;
              naive_imbalance = Numerics.Stats.mean naive;
            }
            :: !rows)
        processor_counts)
    sizes;
  List.rev !rows

let print rows =
  Report.section "E2 (paper §3): sorting as an almost-divisible load";
  let table =
    Numerics.Ascii_table.create
      ~headers:
        [
          "N"; "p"; "s"; "gap pred"; "gap meas"; "maxbkt/avg"; "envelope"; "speedup";
          "ideal";
        ]
  in
  List.iter
    (fun (r : row) ->
      Numerics.Ascii_table.add_row table
        [
          Report.int_cell r.n;
          Report.int_cell r.p;
          Report.int_cell r.s;
          Report.float_cell ~digits:4 r.predicted_gap;
          Report.float_cell ~digits:4 r.measured_gap;
          Report.float_cell ~digits:4 r.max_bucket_ratio;
          Report.float_cell ~digits:4 r.envelope;
          Report.float_cell ~digits:4 r.speedup;
          Report.float_cell ~digits:4 r.ideal_speedup;
        ])
    rows;
  Numerics.Ascii_table.print table

let print_hetero rows =
  Report.subsection "E2b (§3.2): heterogeneous splitters, local-sort imbalance";
  let table =
    Numerics.Ascii_table.create
      ~headers:[ "N"; "p"; "e (speed-aware)"; "e (equal buckets)" ]
  in
  List.iter
    (fun r ->
      Numerics.Ascii_table.add_row table
        [
          Report.int_cell r.n;
          Report.int_cell r.p;
          Report.float_cell ~digits:4 r.imbalance;
          Report.float_cell ~digits:4 r.naive_imbalance;
        ])
    rows;
  Numerics.Ascii_table.print table
