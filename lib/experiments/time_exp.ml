module Rng = Numerics.Rng
module Profiles = Platform.Profiles

type row = {
  bandwidth : float;
  het_ratio : float;
  hom_ratio : float;
  het_comm_share : float;
}

let run ?(p = 32) ?(n = 1e3) ?(bandwidths = [ 1e4; 1e2; 10.; 1.; 0.1 ]) ?(trials = 10)
    ?(seed = 41) ?domains profile =
  let rng = Rng.create ~seed () in
  List.map
    (fun bandwidth ->
      let het_ratios = Array.make trials 0. in
      let hom_ratios = Array.make trials 0. in
      let comm_shares = Array.make trials 0. in
      (* Pre-split per-trial RNGs in sequential order, then run the
         trials on the domain pool: same streams, same output. *)
      let rngs = Array.make trials rng in
      for t = 0 to trials - 1 do
        rngs.(t) <- Rng.split rng
      done;
      Numerics.Parallel.parallel_for ?domains trials (fun t ->
          Obs.Trace.begin_span "time.trial";
          let star = Profiles.generate ~bandwidth rngs.(t) ~p profile in
          let bound = Partition.Timed.compute_bound star ~n in
          let het = Partition.Timed.het star ~n in
          let hom = Partition.Timed.hom_balanced star ~n in
          het_ratios.(t) <- het.Partition.Timed.makespan /. bound;
          hom_ratios.(t) <- hom.Partition.Timed.makespan /. bound;
          comm_shares.(t) <-
            het.Partition.Timed.comm_makespan /. het.Partition.Timed.makespan;
          Obs.Trace.end_span "time.trial");
      {
        bandwidth;
        het_ratio = Numerics.Stats.mean het_ratios;
        hom_ratio = Numerics.Stats.mean hom_ratios;
        het_comm_share = Numerics.Stats.mean comm_shares;
      })
    bandwidths

let print ~profile rows =
  Report.section
    (Printf.sprintf
       "E4 (extension): makespan vs compute bound under shrinking bandwidth (%s speeds)"
       profile);
  let table =
    Numerics.Ascii_table.create
      ~headers:[ "bandwidth"; "het makespan/bound"; "hom/k makespan/bound"; "het comm share" ]
  in
  List.iter
    (fun r ->
      Numerics.Ascii_table.add_row table
        [
          Report.float_cell r.bandwidth;
          Report.float_cell ~digits:5 r.het_ratio;
          Report.float_cell ~digits:5 r.hom_ratio;
          Report.float_cell ~digits:4 r.het_comm_share;
        ])
    rows;
  Numerics.Ascii_table.print table
