open Cmdliner

type output = {
  header : string list;
  rows : string list list;
  json : Obs.Json.t;
}

type entry = {
  name : string;
  synopsis : string;
  term : (unit -> output option * int) Term.t;
}

let output ~header ~rows ~json = { header; rows; json }

(* Generic JSON view of a string table: numeric-looking cells become
   numbers so downstream tools see typed values. *)
let json_cell s =
  match int_of_string_opt s with
  | Some i -> Obs.Json.Int i
  | None -> (
      match float_of_string_opt s with
      | Some f -> Obs.Json.Float f
      | None -> Obs.Json.String s)

let json_of_table header rows =
  Obs.Json.List
    (List.map
       (fun row -> Obs.Json.Obj (List.map2 (fun k v -> (k, json_cell v)) header row))
       rows)

let table ~header ~rows = { header; rows; json = json_of_table header rows }

let entry ~name ~synopsis term =
  { name; synopsis; term = Term.(const (fun f () -> (f (), 0)) $ term) }

let gated ~name ~synopsis term = { name; synopsis; term }

(* --- shared argument terms --- *)

let profile_conv =
  let parse s =
    match Platform.Profiles.of_name s with
    | Some p -> Ok p
    | None -> Error (`Msg (Printf.sprintf "unknown profile %S" s))
  in
  let print ppf p = Format.pp_print_string ppf (Platform.Profiles.name p) in
  Arg.conv (parse, print)

let profile =
  Arg.(
    value
    & opt profile_conv Platform.Profiles.paper_uniform
    & info [ "profile" ] ~docv:"PROFILE"
        ~doc:"Speed profile: homogeneous, uniform, lognormal or bimodal.")

let trials ?(default = 100) () =
  Arg.(
    value & opt int default
    & info [ "trials" ] ~docv:"T" ~doc:"Repetitions per data point.")

let seed =
  Arg.(value & opt int 20130520 & info [ "seed" ] ~docv:"S" ~doc:"PRNG seed.")

let processor_counts ~default =
  Arg.(
    value & opt (list int) default
    & info [ "p" ] ~docv:"P,..." ~doc:"Processor counts to sweep.")

let domains =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ] ~docv:"D" ~doc:"Domain-pool size for parallel trial loops.")

(* --- per-command plumbing: logging, observability, table dumps --- *)

let setup_logs verbosity =
  let level =
    match verbosity with 0 -> Some Logs.Warning | 1 -> Some Logs.Info | _ -> Some Logs.Debug
  in
  Logs.set_level level;
  Logs.set_reporter (Logs.format_reporter ())

let verbosity =
  Arg.(value & flag_all & info [ "v"; "verbose" ] ~doc:"Increase log verbosity (repeatable).")

let logs_term = Term.(const setup_logs $ (const List.length $ verbosity))

let trace_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Record runtime spans and write a Chrome trace-event JSON to $(docv).")

let metrics_file =
  Arg.(
    value
    & opt ~vopt:(Some "-") (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:"Collect runtime metrics; write the snapshot to $(docv) (\"-\" = stdout).")

let setup_obs trace metrics =
  if trace <> None then Obs.Trace.set_enabled true;
  if metrics <> None then begin
    Obs.Metrics.set_enabled true;
    Obs.Hist.set_enabled true
  end;
  (trace, metrics)

let obs_term = Term.(const setup_obs $ trace_file $ metrics_file)

let finish_obs (trace, metrics) =
  (match trace with
  | None -> ()
  | Some path ->
      Obs.Trace.set_enabled false;
      Obs.Export.write_trace path;
      let dropped = Obs.Trace.dropped () in
      if dropped > 0 then
        Printf.eprintf "nldl: trace ring buffers dropped %d events\n%!" dropped;
      Printf.eprintf "Trace written to %s\n%!" path);
  match metrics with
  | None -> ()
  | Some "-" -> print_endline (Obs.Json.to_string (Obs.Export.metrics_json ()))
  | Some path ->
      Obs.Export.write_metrics path;
      Printf.eprintf "Metrics written to %s\n%!" path

let csv_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv" ] ~docv:"FILE" ~doc:"Also write the series as CSV to $(docv).")

let json_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE" ~doc:"Also write the series as JSON to $(docv).")

let dump name out csv json =
  let missing flag =
    Printf.eprintf "nldl %s: --%s requested but this command returns no table\n%!" name
      flag
  in
  (match (csv, out) with
  | None, _ -> ()
  | Some _, None -> missing "csv"
  | Some path, Some o ->
      Csv_out.write ~path ~header:o.header ~rows:o.rows;
      Printf.eprintf "CSV written to %s\n%!" path);
  match (json, out) with
  | None, _ -> ()
  | Some _, None -> missing "json"
  | Some path, Some o ->
      (* The --json surface is the canonical Api.Response envelope, the
         same schema `nldl serve` answers with and the bench artifact
         embeds — consumers parse one shape, whatever produced it. *)
      let response =
        {
          Api.Response.body =
            Api.Response.Table { experiment = name; header = o.header; rows = o.json };
          provenance = { Api.Response.solver = "nldl.registry"; cache = Api.Response.Uncached };
        }
      in
      Obs.Json.write_file path (Api.Response.to_json response);
      Printf.eprintf "JSON written to %s\n%!" path

let to_cmd e =
  (* cmdliner evaluates [$] arguments left to right, so the logging and
     observability setup run before the command body, and the
     trace/metrics files are flushed after it returns. *)
  let run () obs csv json thunk =
    let out, status = thunk () in
    dump e.name out csv json;
    finish_obs obs;
    (* Gated commands (nldl lint) carry the gate result in their exit
       code; exiting after the flushes keeps --trace/--json intact. *)
    if status <> 0 then exit status
  in
  Cmd.v
    (Cmd.info e.name ~doc:e.synopsis)
    Term.(const run $ logs_term $ obs_term $ csv_file $ json_file $ e.term)
