module Stats = Numerics.Stats
module Rng = Numerics.Rng

type point = {
  p : int;
  het : Stats.summary;
  hom : Stats.summary;
  hom_over_k : Stats.summary;
  mean_k : float;
}

let default_processor_counts = [ 10; 20; 40; 60; 80; 100 ]

let sweep ?(processor_counts = default_processor_counts) ?(trials = 100) ?(seed = 20130520)
    ?domains profile =
  let rng = Rng.create ~seed () in
  let point p =
    let het = Array.make trials 0. in
    let hom = Array.make trials 0. in
    let hom_over_k = Array.make trials 0. in
    let ks = Array.make trials 0. in
    (* Split the seed RNG sequentially so every trial owns an
       independent stream; the trial loop can then run on the domain
       pool with results identical to the sequential order. *)
    let rngs = Array.make trials rng in
    for t = 0 to trials - 1 do
      rngs.(t) <- Rng.split rng
    done;
    Numerics.Parallel.parallel_for ?domains trials (fun t ->
        Obs.Trace.begin_span "fig4.trial";
        let star = Platform.Profiles.generate rngs.(t) ~p profile in
        let r = Partition.Strategies.evaluate star in
        het.(t) <- r.Partition.Strategies.het;
        hom.(t) <- r.Partition.Strategies.hom;
        hom_over_k.(t) <- r.Partition.Strategies.hom_over_k;
        ks.(t) <- float_of_int r.Partition.Strategies.k;
        Obs.Trace.end_span "fig4.trial");
    {
      p;
      het = Stats.summarize het;
      hom = Stats.summarize hom;
      hom_over_k = Stats.summarize hom_over_k;
      mean_k = Stats.mean ks;
    }
  in
  List.map point processor_counts

let csv points =
  let header =
    [ "p"; "het_mean"; "het_sd"; "hom_mean"; "hom_sd"; "homk_mean"; "homk_sd"; "mean_k" ]
  in
  let row pt =
    [
      string_of_int pt.p;
      Printf.sprintf "%.6g" pt.het.Stats.mean;
      Printf.sprintf "%.6g" pt.het.Stats.stddev;
      Printf.sprintf "%.6g" pt.hom.Stats.mean;
      Printf.sprintf "%.6g" pt.hom.Stats.stddev;
      Printf.sprintf "%.6g" pt.hom_over_k.Stats.mean;
      Printf.sprintf "%.6g" pt.hom_over_k.Stats.stddev;
      Printf.sprintf "%.6g" pt.mean_k;
    ]
  in
  (header, List.map row points)

let print ~title points =
  Report.section title;
  let table =
    Numerics.Ascii_table.create
      ~headers:
        [ "p"; "Commhet/LB"; "het 95% CI"; "Commhom/LB"; "Commhom/k/LB"; "mean k" ]
  in
  List.iter
    (fun pt ->
      let ci =
        if pt.het.Stats.n >= 2 then
          let i = Numerics.Confidence.of_summary pt.het in
          Printf.sprintf "[%.4g, %.4g]" i.Numerics.Confidence.lo i.Numerics.Confidence.hi
        else "-"
      in
      Numerics.Ascii_table.add_row table
        [
          Report.int_cell pt.p;
          Report.mean_sd pt.het;
          ci;
          Report.mean_sd pt.hom;
          Report.mean_sd pt.hom_over_k;
          Report.float_cell ~digits:3 pt.mean_k;
        ])
    points;
  Numerics.Ascii_table.print table;
  let series label f =
    {
      Numerics.Ascii_chart.label;
      points = Array.of_list (List.map (fun pt -> (float_of_int pt.p, f pt)) points);
    }
  in
  Numerics.Ascii_chart.print ~height:12
    [
      series "Commhet" (fun pt -> pt.het.Stats.mean);
      series "Commhom" (fun pt -> pt.hom.Stats.mean);
      series "Commhom/k" (fun pt -> pt.hom_over_k.Stats.mean);
    ]
