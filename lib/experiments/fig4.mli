(** Reproduction of Figures 4(a), 4(b), 4(c): the communication ratios
    of the three distribution strategies against the lower bound, as the
    platform grows, for the paper's three speed profiles; each point
    averages [trials] random platforms (the paper uses 100) and reports
    the standard deviation as error bars. *)

type point = {
  p : int;
  het : Numerics.Stats.summary;
  hom : Numerics.Stats.summary;
  hom_over_k : Numerics.Stats.summary;
  mean_k : float;  (** average subdivision reached by Commhom/k *)
}

val default_processor_counts : int list
(** The paper's x-axis: 10, 20, 40, 60, 80, 100. *)

val sweep :
  ?processor_counts:int list ->
  ?trials:int ->
  ?seed:int ->
  ?domains:int ->
  Platform.Profiles.t ->
  point list
(** [trials] defaults to 100 (the paper), [seed] to a fixed constant.
    Trials run on up to [domains] domains of the shared pool (default
    {!Numerics.Parallel.default_domains}); per-trial RNGs are pre-split
    from the seed generator in sequential order, so the output is
    identical at any domain count. *)

val print : title:string -> point list -> unit
(** Table plus ASCII chart of the three series. *)

val csv : point list -> string list * string list list
(** [(header, rows)] for {!Csv_out}: p, mean and stddev of each
    strategy's ratio, and the mean subdivision. *)
