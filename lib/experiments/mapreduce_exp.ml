module Rng = Numerics.Rng
module Profiles = Platform.Profiles

type row = {
  p : int;
  profile : string;
  fifo_comm : float;
  affinity_comm : float;
  zone_comm : float;
  fifo_makespan : float;
  affinity_makespan : float;
}

let run ?(n = 512) ?(chunk = 16) ?(processor_counts = [ 4; 16 ]) ?(trials = 3) ?(seed = 17)
    ?domains () =
  let rng = Rng.create ~seed () in
  let rows = ref [] in
  let profiles = [ Profiles.paper_homogeneous; Profiles.paper_uniform ] in
  List.iter
    (fun profile ->
      List.iter
        (fun p ->
          let fifo_comm = Array.make trials 0. in
          let affinity_comm = Array.make trials 0. in
          let zone_comm = Array.make trials 0. in
          let fifo_makespan = Array.make trials 0. in
          let affinity_makespan = Array.make trials 0. in
          (* Pre-split per-trial RNGs in sequential order, then run the
             trials on the domain pool: same streams, same output. *)
          let rngs = Array.make trials rng in
          for t = 0 to trials - 1 do
            rngs.(t) <- Rng.split rng
          done;
          Numerics.Parallel.parallel_for ?domains trials (fun t ->
            Obs.Trace.begin_span "mapreduce.trial";
            let trial_rng = rngs.(t) in
            let star = Profiles.generate trial_rng ~p profile in
            let a = Array.init n (fun _ -> Rng.uniform trial_rng (-1.) 1.) in
            let b = Array.init n (fun _ -> Rng.uniform trial_rng (-1.) 1.) in
            let job = Mapreduce.Jobs.outer_product ~a ~b ~chunk in
            let run_with policy =
              Mapreduce.Scheduler.run
                ~config:{ Mapreduce.Scheduler.default_config with policy }
                star ~tasks:job.Mapreduce.Engine.tasks
                ~block_size:job.Mapreduce.Engine.block_size
            in
            let fifo = run_with Mapreduce.Scheduler.Fifo in
            let affinity = run_with Mapreduce.Scheduler.Affinity in
            let zones = Linalg.Zone.for_platform star ~n in
            fifo_comm.(t) <- fifo.Mapreduce.Scheduler.communication;
            affinity_comm.(t) <- affinity.Mapreduce.Scheduler.communication;
            zone_comm.(t) <- float_of_int (Linalg.Zone.half_perimeter_sum zones);
            fifo_makespan.(t) <- fifo.Mapreduce.Scheduler.makespan;
            affinity_makespan.(t) <- affinity.Mapreduce.Scheduler.makespan;
            Obs.Trace.end_span "mapreduce.trial");
          rows :=
            {
              p;
              profile = Profiles.name profile;
              fifo_comm = Numerics.Stats.mean fifo_comm;
              affinity_comm = Numerics.Stats.mean affinity_comm;
              zone_comm = Numerics.Stats.mean zone_comm;
              fifo_makespan = Numerics.Stats.mean fifo_makespan;
              affinity_makespan = Numerics.Stats.mean affinity_makespan;
            }
            :: !rows)
        processor_counts)
    profiles;
  List.rev !rows

let print rows =
  Report.section "Ablation (paper conclusion): affinity-aware MapReduce scheduling";
  let table =
    Numerics.Ascii_table.create
      ~headers:
        [ "profile"; "p"; "comm FIFO"; "comm affinity"; "comm zones"; "mkspan FIFO";
          "mkspan affinity" ]
  in
  List.iter
    (fun r ->
      Numerics.Ascii_table.add_row table
        [
          r.profile;
          Report.int_cell r.p;
          Report.float_cell ~digits:6 r.fifo_comm;
          Report.float_cell ~digits:6 r.affinity_comm;
          Report.float_cell ~digits:6 r.zone_comm;
          Report.float_cell ~digits:5 r.fifo_makespan;
          Report.float_cell ~digits:5 r.affinity_makespan;
        ])
    rows;
  Numerics.Ascii_table.print table
