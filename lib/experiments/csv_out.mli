(** Minimal CSV writer so experiment series can be post-processed with
    external plotting tools. *)

val escape : string -> string
(** RFC-4180 quoting of one field. *)

val to_string : header:string list -> rows:string list list -> string
(** Raises [Invalid_argument] when a row's width differs from the
    header's. *)

val parse : string -> (string list list, string) result
(** RFC-4180 inverse of {!to_string} (header row included): handles
    quoted fields with embedded commas, quotes and newlines, and both
    [\n] and [\r\n] row terminators.  [parse (to_string ~header ~rows)]
    is [Ok (header :: rows)] for any field contents — the round-trip
    the property test pins down. *)

val write : path:string -> header:string list -> rows:string list list -> unit
