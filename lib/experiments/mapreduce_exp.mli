(** Ablation of the paper's concluding proposal: adding data-affinity
    awareness to the demand-driven MapReduce scheduler ("favoring among
    all available tasks those that share blocks with data already stored
    on a slave processor").

    Runs the outer-product job under plain FIFO demand-driven scheduling
    and under affinity-aware scheduling, on the same platforms, and
    reports the map-phase communication of each against the zone-based
    heterogeneous partitioning. *)

type row = {
  p : int;
  profile : string;
  fifo_comm : float;
  affinity_comm : float;
  zone_comm : float;  (** Heterogeneous Blocks (one zone per worker) *)
  fifo_makespan : float;
  affinity_makespan : float;
}

val run :
  ?n:int ->
  ?chunk:int ->
  ?processor_counts:int list ->
  ?trials:int ->
  ?seed:int ->
  ?domains:int ->
  unit ->
  row list
(** Trials run on the shared domain pool with pre-split per-trial RNGs;
    output is identical at any [domains]. *)

val print : row list -> unit
