let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let escape s =
  if needs_quoting s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let to_string ~header ~rows =
  let width = List.length header in
  let buf = Buffer.create 1024 in
  let emit row =
    if List.length row <> width then invalid_arg "Csv_out: row width mismatch";
    Buffer.add_string buf (String.concat "," (List.map escape row));
    Buffer.add_char buf '\n'
  in
  emit header;
  List.iter emit rows;
  Buffer.contents buf

exception Bad of string

let parse s =
  let n = String.length s in
  let rows = ref [] in
  let row = ref [] in
  let buf = Buffer.create 16 in
  let flush_field () =
    row := Buffer.contents buf :: !row;
    Buffer.clear buf
  in
  let flush_row () =
    rows := List.rev !row :: !rows;
    row := []
  in
  let i = ref 0 in
  try
    while !i < n do
      (* one field, quoted or bare *)
      if s.[!i] = '"' then begin
        incr i;
        let closed = ref false in
        while not !closed do
          if !i >= n then raise (Bad "unterminated quoted field");
          (match s.[!i] with
          | '"' ->
              if !i + 1 < n && s.[!i + 1] = '"' then begin
                Buffer.add_char buf '"';
                incr i
              end
              else closed := true
          | c -> Buffer.add_char buf c);
          incr i
        done
      end
      else
        while !i < n && s.[!i] <> ',' && s.[!i] <> '\n' && s.[!i] <> '\r' do
          if s.[!i] = '"' then raise (Bad "quote inside unquoted field");
          Buffer.add_char buf s.[!i];
          incr i
        done;
      flush_field ();
      if !i >= n then flush_row ()
      else
        match s.[!i] with
        | ',' ->
            incr i;
            if !i >= n then begin
              (* trailing comma: one final empty field *)
              flush_field ();
              flush_row ()
            end
        | '\r' ->
            incr i;
            if !i < n && s.[!i] = '\n' then incr i;
            flush_row ()
        | '\n' ->
            incr i;
            flush_row ()
        | c -> raise (Bad (Printf.sprintf "unexpected %C after quoted field" c))
    done;
    if !row <> [] then flush_row ();
    Ok (List.rev !rows)
  with Bad msg -> Error msg

let write ~path ~header ~rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ~header ~rows))
