(** Robustness experiment: how much of the demand-driven scheduler's
    makespan survives injected faults — the fault-tolerance cost on top
    of the paper's communication trade-off.

    Sweeps crash rate × straggler jitter sigma × speculation policy on a
    homogeneous star.  Each cell first runs fault-free to calibrate the
    horizon and the baseline makespan, then replays the same workload
    under a seeded {!Fault.Plan} (crashes with recovery plus per-link
    fetch failures) and reports the makespan degradation factor and the
    wasted work. *)

type row = {
  crash_rate : float;
  sigma : float;  (** log-normal jitter sigma *)
  policy : string;  (** ["off"], ["at-idle"] or ["late"] *)
  makespan : float;  (** mean over trials, with faults *)
  degradation : float;  (** mean faulted / mean fault-free makespan *)
  wasted : float;  (** mean wasted work units per trial *)
  retries : float;  (** mean fetch retries + task re-enqueues *)
  crashes : float;  (** mean injected crashes survived *)
  unfinished : float;  (** mean tasks that never completed (0 expected) *)
}

val run :
  ?tasks:int ->
  ?p:int ->
  ?crash_rates:float list ->
  ?sigmas:float list ->
  ?fetch_failure:float ->
  ?trials:int ->
  ?seed:int ->
  ?domains:int ->
  unit ->
  row list
(** Trials run on the shared domain pool with pre-split per-trial RNGs;
    output is identical at any [domains]. *)

val print : row list -> unit
val csv : row list -> string list * string list list
