module Rng = Numerics.Rng
module Scheduler = Mapreduce.Scheduler

type row = {
  crash_rate : float;
  sigma : float;
  policy : string;
  makespan : float;
  degradation : float;
  wasted : float;
  retries : float;
  crashes : float;
  unfinished : float;
}

let policies =
  [
    ("off", Scheduler.Off);
    ("at-idle", Scheduler.At_idle);
    ("late", Scheduler.Late { threshold = 0.25 });
  ]

let run ?(tasks = 24) ?(p = 4) ?(crash_rates = [ 0.; 0.3; 0.6 ])
    ?(sigmas = [ 0.; 0.8 ]) ?(fetch_failure = 0.05) ?(trials = 5) ?(seed = 4242)
    ?domains () =
  let star = Platform.Star.of_speeds (List.init p (fun _ -> 1.)) in
  let task_set =
    Array.init tasks (fun i -> Mapreduce.Task.make ~id:i ~data_ids:[| i |] ~cost:10.)
  in
  let block_size _ = 2. in
  let rng = Rng.create ~seed () in
  let n_pol = List.length policies in
  let rows = ref [] in
  List.iter
    (fun crash_rate ->
      List.iter
        (fun sigma ->
          let base = Array.make trials 0. in
          let mk = Array.make_matrix n_pol trials 0. in
          let wa = Array.make_matrix n_pol trials 0. in
          let re = Array.make_matrix n_pol trials 0. in
          let cr = Array.make_matrix n_pol trials 0. in
          let un = Array.make_matrix n_pol trials 0. in
          (* Pre-split per-trial RNGs in sequential order, then run the
             trials on the domain pool: same streams, same output. *)
          let rngs = Array.make trials rng in
          for t = 0 to trials - 1 do
            rngs.(t) <- Rng.split rng
          done;
          Numerics.Parallel.parallel_for ?domains trials (fun t ->
              Obs.Trace.begin_span "faults.trial";
              let trial_rng = rngs.(t) in
              let jitter_rng = Rng.split trial_rng in
              let plan_rng = Rng.split trial_rng in
              (* Fault-free baseline: calibrates the plan horizon and
                 the degradation denominator, same jitter stream. *)
              let baseline =
                Scheduler.run
                  ~jitter:(Rng.copy jitter_rng, sigma)
                  star ~tasks:task_set ~block_size
              in
              base.(t) <- baseline.Scheduler.makespan;
              let horizon = Float.max baseline.Scheduler.makespan 1. in
              let plan =
                Fault.Plan.generate ~rng:plan_rng ~p ~horizon ~crash_rate
                  ~fetch_failure ()
              in
              List.iteri
                (fun k (_, speculation) ->
                  let config = { Scheduler.default_config with speculation } in
                  let o =
                    Scheduler.run ~config
                      ~jitter:(Rng.copy jitter_rng, sigma)
                      ~faults:plan star ~tasks:task_set ~block_size
                  in
                  mk.(k).(t) <- o.Scheduler.makespan;
                  wa.(k).(t) <- o.Scheduler.wasted_work;
                  re.(k).(t) <- float_of_int o.Scheduler.retries;
                  cr.(k).(t) <- float_of_int o.Scheduler.crashes_survived;
                  un.(k).(t) <- float_of_int (List.length o.Scheduler.unfinished))
                policies;
              Obs.Trace.end_span "faults.trial");
          let mean = Numerics.Stats.mean in
          let base_mean = Float.max (mean base) 1e-9 in
          List.iteri
            (fun k (name, _) ->
              rows :=
                {
                  crash_rate;
                  sigma;
                  policy = name;
                  makespan = mean mk.(k);
                  degradation = mean mk.(k) /. base_mean;
                  wasted = mean wa.(k);
                  retries = mean re.(k);
                  crashes = mean cr.(k);
                  unfinished = mean un.(k);
                }
                :: !rows)
            policies)
        sigmas)
    crash_rates;
  List.rev !rows

let print rows =
  Report.section "Robustness: makespan degradation under injected faults";
  let table =
    Numerics.Ascii_table.create
      ~headers:
        [ "crash rate"; "sigma"; "policy"; "makespan"; "degradation"; "wasted";
          "retries"; "crashes"; "unfinished" ]
  in
  List.iter
    (fun r ->
      Numerics.Ascii_table.add_row table
        [
          Report.float_cell r.crash_rate;
          Report.float_cell r.sigma;
          r.policy;
          Report.float_cell ~digits:5 r.makespan;
          Report.float_cell ~digits:4 r.degradation;
          Report.float_cell ~digits:3 r.wasted;
          Report.float_cell ~digits:2 r.retries;
          Report.float_cell ~digits:2 r.crashes;
          Report.float_cell ~digits:2 r.unfinished;
        ])
    rows;
  Numerics.Ascii_table.print table

let header =
  [ "crash_rate"; "sigma"; "policy"; "makespan"; "degradation"; "wasted_work";
    "retries"; "crashes_survived"; "unfinished" ]

let csv rows =
  ( header,
    List.map
      (fun r ->
        [
          Printf.sprintf "%g" r.crash_rate;
          Printf.sprintf "%g" r.sigma;
          r.policy;
          Printf.sprintf "%.6f" r.makespan;
          Printf.sprintf "%.6f" r.degradation;
          Printf.sprintf "%.6f" r.wasted;
          Printf.sprintf "%g" r.retries;
          Printf.sprintf "%g" r.crashes;
          Printf.sprintf "%g" r.unfinished;
        ])
      rows )
