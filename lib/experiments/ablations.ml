module Rng = Numerics.Rng
module Profiles = Platform.Profiles
module Star = Platform.Star
module Processor = Platform.Processor

type partitioner_row = {
  p : int;
  profile : string;
  dp_ratio : float;
  bisection_ratio : float;
}

type summa_row = { panel : int; words : int; messages : int }

type c25d_row = { p : int; c : int; per_processor : float; total : float; speedup : float }

type splitter_row = {
  n : int;
  p : int;
  sample_ratio : float;
  histogram_ratio : float;
  histogram_passes : int;
  psrs_ratio : float;
}

type speculation_row = {
  sigma : float;
  plain_makespan : float;
  speculative_makespan : float;
  duplicates : float;
}

type ordering_row = { p : int; spread : float; latency_scale : float }

type matmul_row = {
  algorithm : string;
  n : int;
  p : int;
  words : int;
  messages : int;
  correct : bool;
}

let partitioners ?(processor_counts = [ 10; 40; 100 ]) ?(trials = 20) ?(seed = 31) () =
  let rng = Rng.create ~seed () in
  let rows = ref [] in
  List.iter
    (fun profile ->
      List.iter
        (fun p ->
          let dp = Array.make trials 0. and bisection = Array.make trials 0. in
          for t = 0 to trials - 1 do
            let star = Profiles.generate (Rng.split rng) ~p profile in
            let areas = Star.relative_speeds star in
            let lb = Partition.Lower_bound.peri_sum ~areas in
            dp.(t) <-
              (Partition.Column_partition.peri_sum ~areas).Partition.Column_partition.cost
              /. lb;
            bisection.(t) <- Partition.Bisection.cost ~areas /. lb
          done;
          rows :=
            {
              p;
              profile = Profiles.name profile;
              dp_ratio = Numerics.Stats.mean dp;
              bisection_ratio = Numerics.Stats.mean bisection;
            }
            :: !rows)
        processor_counts)
    [ Profiles.paper_uniform; Profiles.paper_lognormal ];
  List.rev !rows

let summa_panels ?(n = 64) ?(panels = [ 1; 4; 16; 64 ]) () =
  let rng = Rng.create ~seed:32 () in
  let a = Linalg.Matrix.random rng ~rows:n ~cols:n in
  let b = Linalg.Matrix.random rng ~rows:n ~cols:n in
  (* A panel wider than the matrix is meaningless (and rejected by
     Summa.distributed): drop such entries so callers can shrink [n]
     without re-deriving the panel list. *)
  let panels = List.filter (fun panel -> panel <= n) panels in
  List.map
    (fun panel ->
      let stats = Linalg.Summa.distributed ~grid_rows:2 ~grid_cols:2 ~panel a b in
      { panel; words = stats.Linalg.Summa.words; messages = stats.Linalg.Summa.messages })
    panels

let c25d ?(n = 1024) ?(ps = [ 16; 64; 256 ]) () =
  List.concat_map
    (fun p ->
      let cs =
        List.filter
          (fun c ->
            match Linalg.C25d.evaluate ~p ~c ~n with
            | (_ : Linalg.C25d.model) -> true
            | exception Invalid_argument _ -> false)
          [ 1; 2; 4; 8 ]
      in
      List.map
        (fun c ->
          let model = Linalg.C25d.evaluate ~p ~c ~n in
          {
            p;
            c;
            per_processor = model.Linalg.C25d.per_processor;
            total = model.Linalg.C25d.total;
            speedup = Linalg.C25d.speedup_over_2d ~p ~c ~n;
          })
        cs)
    ps

let splitters ?(n = 100_000) ?(processor_counts = [ 8; 32 ]) ?(seed = 33) () =
  let rng = Rng.create ~seed () in
  List.map
    (fun p ->
      let keys = Array.init n (fun _ -> Rng.float rng) in
      let s = Sortlib.Sample_sort.default_oversampling ~n in
      let sample_splitters =
        Sortlib.Sample_sort.choose_splitters ~cmp:Float.compare rng keys ~p ~s
      in
      let buckets =
        Sortlib.Sample_sort.partition ~cmp:Float.compare keys ~splitters:sample_splitters
      in
      let histogram = Sortlib.Histogram_sort.splitters ~tolerance:0.01 keys ~p in
      let psrs = Sortlib.Psrs.sort keys ~p in
      {
        n;
        p;
        sample_ratio = Sortlib.Sample_sort.max_bucket_ratio buckets;
        histogram_ratio = Sortlib.Histogram_sort.max_bucket_ratio histogram;
        histogram_passes = histogram.Sortlib.Histogram_sort.passes;
        psrs_ratio = Sortlib.Psrs.max_bucket_ratio psrs;
      })
    processor_counts

let speculation ?(sigmas = [ 0.5; 1.; 1.5 ]) ?(trials = 20) ?(tasks = 32) ?(p = 4) () =
  let star = Star.of_speeds (List.init p (fun _ -> 1.)) in
  let task_set =
    Array.init tasks (fun i -> Mapreduce.Task.make ~id:i ~data_ids:[| i |] ~cost:10.)
  in
  List.map
    (fun sigma ->
      let span speculation seed =
        let outcome =
          Mapreduce.Scheduler.run
            ~config:{ Mapreduce.Scheduler.default_config with speculation }
            ~jitter:(Rng.create ~seed (), sigma)
            star ~tasks:task_set
            ~block_size:(fun _ -> 0.1)
        in
        (outcome.Mapreduce.Scheduler.makespan, outcome.Mapreduce.Scheduler.duplicates)
      in
      let totals speculation =
        let spans = ref 0. and dups = ref 0 in
        for seed = 1 to trials do
          let s, d = span speculation (1000 + seed) in
          spans := !spans +. s;
          dups := !dups + d
        done;
        (!spans /. float_of_int trials, float_of_int !dups /. float_of_int trials)
      in
      let plain, _ = totals Mapreduce.Scheduler.Off in
      let speculative, duplicates = totals Mapreduce.Scheduler.At_idle in
      { sigma; plain_makespan = plain; speculative_makespan = speculative; duplicates })
    sigmas

let ordering ?(p = 6) ?(latency_scales = [ 0.; 0.5; 2.; 8. ]) ?(seed = 34) () =
  let rng = Rng.create ~seed () in
  List.map
    (fun latency_scale ->
      let procs =
        List.init p (fun i ->
            Processor.make ~id:(i + 1)
              ~speed:(Rng.uniform rng 1. 10.)
              ~latency:(latency_scale *. Rng.float rng)
              ())
      in
      let star = Star.create procs in
      { p; spread = Dlt.Ordering.order_spread star ~total:100.; latency_scale })
    latency_scales

let matmul_algorithms ?(n = 48) ?(grid = 4) () =
  let rng = Rng.create ~seed:35 () in
  let a = Linalg.Matrix.random rng ~rows:n ~cols:n in
  let b = Linalg.Matrix.random rng ~rows:n ~cols:n in
  let reference = Linalg.Matrix.mul a b in
  let p = grid * grid in
  let rank1 =
    let zones = Linalg.Zone.uniform_grid ~p ~n in
    let stats = Linalg.Matmul.distributed ~zones a b in
    {
      algorithm = "rank-1 zones";
      n;
      p;
      words = stats.Linalg.Matmul.total;
      messages = 2 * p * n;
      correct = Linalg.Matrix.approx_equal stats.Linalg.Matmul.result reference;
    }
  in
  let summa panel =
    let stats = Linalg.Summa.distributed ~grid_rows:grid ~grid_cols:grid ~panel a b in
    {
      algorithm = Printf.sprintf "SUMMA (panel %d)" panel;
      n;
      p;
      words = stats.Linalg.Summa.words;
      messages = stats.Linalg.Summa.messages;
      correct = Linalg.Matrix.approx_equal stats.Linalg.Summa.result reference;
    }
  in
  let cannon =
    let stats = Linalg.Cannon.distributed ~grid a b in
    {
      algorithm = "Cannon";
      n;
      p;
      words = stats.Linalg.Cannon.words;
      messages = stats.Linalg.Cannon.messages;
      correct = Linalg.Matrix.approx_equal stats.Linalg.Cannon.result reference;
    }
  in
  [ rank1; summa 1; summa (n / grid); cannon ]

type topology_row = { uplink : float; loss : float; tree_vs_flat : float }

let topology ?(uplinks = [ 16.; 4.; 1.; 0.25 ]) ?(total = 200.) () =
  List.map
    (fun uplink ->
      let cluster () =
        (* Fast internal fabric (bw 8) so the uplink is the variable
           under study, not the gateway's own port. *)
        Platform.Topology.cluster ~bandwidth:uplink
          (List.init 8 (fun _ -> Platform.Topology.worker ~bandwidth:8. ~speed:1. ()))
      in
      let nodes =
        [
          cluster ();
          cluster ();
          Platform.Topology.worker ~bandwidth:2. ~speed:2. ();
          Platform.Topology.worker ~bandwidth:2. ~speed:2. ();
        ]
      in
      let tree = Dlt.Tree.schedule nodes ~total in
      {
        uplink;
        loss = Platform.Topology.aggregation_loss nodes;
        tree_vs_flat = tree.Dlt.Tree.makespan /. Dlt.Tree.flat_makespan nodes ~total;
      })
    uplinks

(* --- printing --- *)

let print_partitioners rows =
  Report.section "Ablation: PERI-SUM column DP vs recursive bisection (ratio to LB)";
  let table =
    Numerics.Ascii_table.create ~headers:[ "profile"; "p"; "column DP"; "bisection" ]
  in
  List.iter
    (fun (r : partitioner_row) ->
      Numerics.Ascii_table.add_row table
        [
          r.profile;
          Report.int_cell r.p;
          Report.float_cell ~digits:5 r.dp_ratio;
          Report.float_cell ~digits:5 r.bisection_ratio;
        ])
    rows;
  Numerics.Ascii_table.print table

let print_summa rows =
  Report.section "Ablation: SUMMA panel width (n=64, 2x2 grid)";
  let table = Numerics.Ascii_table.create ~headers:[ "panel"; "words"; "messages" ] in
  List.iter
    (fun (r : summa_row) ->
      Numerics.Ascii_table.add_row table
        [ Report.int_cell r.panel; Report.int_cell r.words; Report.int_cell r.messages ])
    rows;
  Numerics.Ascii_table.print table

let print_c25d rows =
  Report.section "Ablation: 2.5D replication (communication model, n=1024)";
  let table =
    Numerics.Ascii_table.create
      ~headers:[ "p"; "c"; "words/proc"; "total words"; "speedup vs 2D" ]
  in
  List.iter
    (fun (r : c25d_row) ->
      Numerics.Ascii_table.add_row table
        [
          Report.int_cell r.p;
          Report.int_cell r.c;
          Report.float_cell ~digits:5 r.per_processor;
          Report.float_cell ~digits:5 r.total;
          Report.float_cell ~digits:4 r.speedup;
        ])
    rows;
  Numerics.Ascii_table.print table

let print_splitters rows =
  Report.section "Ablation: sample-sort vs histogram-sort splitters (max bucket / ideal)";
  let table =
    Numerics.Ascii_table.create
      ~headers:[ "N"; "p"; "sample sort"; "histogram"; "histogram passes"; "PSRS" ]
  in
  List.iter
    (fun (r : splitter_row) ->
      Numerics.Ascii_table.add_row table
        [
          Report.int_cell r.n;
          Report.int_cell r.p;
          Report.float_cell ~digits:5 r.sample_ratio;
          Report.float_cell ~digits:5 r.histogram_ratio;
          Report.int_cell r.histogram_passes;
          Report.float_cell ~digits:5 r.psrs_ratio;
        ])
    rows;
  Numerics.Ascii_table.print table

let print_speculation rows =
  Report.section "Ablation: speculative re-execution under straggler jitter";
  let table =
    Numerics.Ascii_table.create
      ~headers:[ "sigma"; "makespan plain"; "makespan spec"; "mean duplicates" ]
  in
  List.iter
    (fun (r : speculation_row) ->
      Numerics.Ascii_table.add_row table
        [
          Report.float_cell r.sigma;
          Report.float_cell ~digits:5 r.plain_makespan;
          Report.float_cell ~digits:5 r.speculative_makespan;
          Report.float_cell ~digits:3 r.duplicates;
        ])
    rows;
  Numerics.Ascii_table.print table

let print_ordering rows =
  Report.section "Ablation: dispatch-order sensitivity of affine one-port DLT";
  let table =
    Numerics.Ascii_table.create ~headers:[ "p"; "latency scale"; "worst/best - 1" ]
  in
  List.iter
    (fun (r : ordering_row) ->
      Numerics.Ascii_table.add_row table
        [
          Report.int_cell r.p;
          Report.float_cell r.latency_scale;
          Report.float_cell ~digits:5 r.spread;
        ])
    rows;
  Numerics.Ascii_table.print table

let print_matmul rows =
  Report.section "Ablation: distributed matmul algorithms (same grid)";
  let table =
    Numerics.Ascii_table.create
      ~headers:[ "algorithm"; "n"; "p"; "words"; "messages"; "correct" ]
  in
  List.iter
    (fun (r : matmul_row) ->
      Numerics.Ascii_table.add_row table
        [
          r.algorithm;
          Report.int_cell r.n;
          Report.int_cell r.p;
          Report.int_cell r.words;
          Report.int_cell r.messages;
          string_of_bool r.correct;
        ])
    rows;
  Numerics.Ascii_table.print table

let print_topology rows =
  Report.section "Ablation: hierarchy — cluster uplink vs stranded compute (2x8+2 workers)";
  let table =
    Numerics.Ascii_table.create
      ~headers:[ "uplink bw"; "aggregation loss"; "tree/flat makespan" ]
  in
  List.iter
    (fun (r : topology_row) ->
      Numerics.Ascii_table.add_row table
        [
          Report.float_cell r.uplink;
          Report.float_cell ~digits:4 r.loss;
          Report.float_cell ~digits:4 r.tree_vs_flat;
        ])
    rows;
  Numerics.Ascii_table.print table

let print_all () =
  print_partitioners (partitioners ());
  print_summa (summa_panels ());
  print_c25d (c25d ());
  print_splitters (splitters ());
  print_speculation (speculation ());
  print_ordering (ordering ());
  print_matmul (matmul_algorithms ());
  print_topology (topology ())
