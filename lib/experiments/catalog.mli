(** The experiment catalog: every [nldl] subcommand as a
    {!Registry.entry}.  The CLI driver folds {!Registry.to_cmd} over
    {!all}; to add a subcommand, add its entry here. *)

val all : Registry.entry list
(** In help order: fig4, nonlinear, sort, ratio, partition, mapreduce,
    time, ablations, faults, mrsim, serve, query. *)
