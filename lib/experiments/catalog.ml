open Cmdliner

(* Generic JSON view of a string table: numeric-looking cells become
   numbers so downstream tools see typed values. *)
let json_cell s =
  match int_of_string_opt s with
  | Some i -> Obs.Json.Int i
  | None -> (
      match float_of_string_opt s with
      | Some f -> Obs.Json.Float f
      | None -> Obs.Json.String s)

let json_of_table header rows =
  Obs.Json.List
    (List.map
       (fun row -> Obs.Json.Obj (List.map2 (fun k v -> (k, json_cell v)) header row))
       rows)

let table_output header rows =
  Registry.output ~header ~rows ~json:(json_of_table header rows)

let fig4 =
  let run profile trials seed processors () =
    let points = Fig4.sweep ~processor_counts:processors ~trials ~seed profile in
    Fig4.print
      ~title:
        (Printf.sprintf "Figure 4 reproduction, %s speeds (%d trials/point)"
           (Platform.Profiles.name profile) trials)
      points;
    let header, rows = Fig4.csv points in
    Some (table_output header rows)
  in
  Registry.entry ~name:"fig4"
    ~synopsis:"Reproduce the Figure 4 communication-ratio sweep."
    Term.(
      const run $ Registry.profile
      $ Registry.trials ()
      $ Registry.seed
      $ Registry.processor_counts ~default:Fig4.default_processor_counts)

let nonlinear =
  let alphas =
    Arg.(
      value & opt (list float) [ 1.5; 2.; 3. ]
      & info [ "alpha" ] ~docv:"A,..." ~doc:"Cost exponents.")
  in
  let run alphas processors () =
    Nonlinear_exp.print (Nonlinear_exp.run ~alphas ~processor_counts:processors ());
    None
  in
  Registry.entry ~name:"nonlinear"
    ~synopsis:"E1: the no-free-lunch fraction for N^alpha loads."
    Term.(
      const run $ alphas $ Registry.processor_counts ~default:[ 2; 4; 16; 64; 256 ])

let sort =
  let sizes =
    Arg.(
      value
      & opt (list int) [ 10_000; 100_000; 1_000_000 ]
      & info [ "n" ] ~docv:"N,..." ~doc:"Input sizes.")
  in
  let run sizes processors () =
    Sorting_exp.print (Sorting_exp.run ~sizes ~processor_counts:processors ());
    Sorting_exp.print_hetero (Sorting_exp.run_hetero ~processor_counts:processors ());
    None
  in
  Registry.entry ~name:"sort" ~synopsis:"E2: sorting as an almost-divisible load."
    Term.(const run $ sizes $ Registry.processor_counts ~default:[ 4; 16; 64 ])

let ratio =
  let factors =
    Arg.(
      value
      & opt (list float) [ 1.; 4.; 9.; 16.; 25.; 49.; 100. ]
      & info [ "k" ] ~docv:"K,..." ~doc:"Fast/slow speed factors.")
  in
  let p = Arg.(value & opt int 20 & info [ "p" ] ~docv:"P" ~doc:"Platform size.") in
  let run factors p () =
    Ratio_exp.print_bimodal (Ratio_exp.run_bimodal ~p ~factors ());
    Ratio_exp.print_general (Ratio_exp.run_general ());
    None
  in
  Registry.entry ~name:"ratio" ~synopsis:"E3: the Commhom/Commhet ratio bounds."
    Term.(const run $ factors $ p)

let partition =
  let speeds =
    Arg.(
      value
      & opt (list float) [ 1.; 1.; 2.; 4.; 4.; 12. ]
      & info [ "speeds" ] ~docv:"S,..." ~doc:"Worker speeds.")
  in
  let platform_file =
    Arg.(
      value
      & opt (some file) None
      & info [ "platform" ] ~docv:"FILE"
          ~doc:"Read the platform from $(docv) (one worker per line: speed [bandwidth \
                [latency]]); overrides --speeds.")
  in
  let run platform_file speeds () =
    let star =
      match platform_file with
      | None -> Platform.Star.of_speeds speeds
      | Some path -> (
          match Platform.Parse.of_file path with
          | Ok star -> star
          | Error msg ->
              prerr_endline ("nldl: cannot read platform: " ^ msg);
              exit 1)
    in
    let layout = Partition.Strategies.het_layout star in
    print_string (Partition.Layout.render layout);
    Printf.printf "\nSum of half-perimeters %.4f, lower bound %.4f\n"
      (Partition.Layout.sum_half_perimeters layout)
      (Partition.Lower_bound.peri_sum ~areas:(Platform.Star.relative_speeds star));
    let r = Partition.Strategies.evaluate star in
    Printf.printf "Ratios to LB: het %.4f, hom %.4f, hom/k %.4f (k = %d)\n"
      r.Partition.Strategies.het r.Partition.Strategies.hom
      r.Partition.Strategies.hom_over_k r.Partition.Strategies.k;
    None
  in
  Registry.entry ~name:"partition"
    ~synopsis:"Partition a platform's outer-product domain (PERI-SUM)."
    Term.(const run $ platform_file $ speeds)

let mapreduce =
  let n = Arg.(value & opt int 512 & info [ "n" ] ~docv:"N" ~doc:"Vector size.") in
  let run n () =
    Mapreduce_exp.print (Mapreduce_exp.run ~n ());
    None
  in
  Registry.entry ~name:"mapreduce"
    ~synopsis:"Affinity-aware MapReduce scheduling ablation."
    Term.(const run $ n)

let time =
  let run profile trials () =
    Time_exp.print
      ~profile:(Platform.Profiles.name profile)
      (Time_exp.run ~trials profile);
    None
  in
  Registry.entry ~name:"time"
    ~synopsis:"E4: strategy makespans (not just volumes) as the network slows down."
    Term.(const run $ Registry.profile $ Registry.trials ~default:10 ())

let ablations =
  let run () () =
    Ablations.print_all ();
    None
  in
  Registry.entry ~name:"ablations"
    ~synopsis:
      "Ablation studies: partitioner choice, SUMMA panels, 2.5D replication, splitter \
       selection, speculation, dispatch order."
    Term.(const run $ const ())

let faults =
  let tasks =
    Arg.(value & opt int 24 & info [ "tasks" ] ~docv:"N" ~doc:"Map tasks per trial.")
  in
  let p = Arg.(value & opt int 4 & info [ "p" ] ~docv:"P" ~doc:"Platform size.") in
  let crash_rates =
    Arg.(
      value
      & opt (list float) [ 0.; 0.3; 0.6 ]
      & info [ "crash-rates" ] ~docv:"R,..." ~doc:"Per-worker crash probabilities.")
  in
  let sigmas =
    Arg.(
      value & opt (list float) [ 0.; 0.8 ]
      & info [ "sigmas" ] ~docv:"S,..." ~doc:"Straggler-jitter sigmas.")
  in
  let fetch_failure =
    Arg.(
      value & opt float 0.05
      & info [ "fetch-failure" ] ~docv:"Q" ~doc:"Per-link fetch-failure probability.")
  in
  let run tasks p crash_rates sigmas fetch_failure trials seed domains () =
    let rows =
      Faults_exp.run ~tasks ~p ~crash_rates ~sigmas ~fetch_failure ~trials ~seed
        ?domains ()
    in
    Faults_exp.print rows;
    let header, csv_rows = Faults_exp.csv rows in
    Some (Registry.output ~header ~rows:csv_rows ~json:(Faults_exp.json rows))
  in
  Registry.entry ~name:"faults"
    ~synopsis:
      "Robustness: makespan degradation under injected crashes, stragglers and fetch \
       failures."
    Term.(
      const run $ tasks $ p $ crash_rates $ sigmas $ fetch_failure
      $ Registry.trials ~default:5 ()
      $ Registry.seed $ Registry.domains)

let mrsim =
  let workers =
    Arg.(value & opt int 100_000 & info [ "workers" ] ~docv:"P" ~doc:"Worker count.")
  in
  let tasks =
    Arg.(value & opt int 1_000_000 & info [ "tasks" ] ~docv:"N" ~doc:"Map tasks.")
  in
  let crash_rate =
    Arg.(
      value & opt float 0.001
      & info [ "crash-rate" ] ~docv:"R" ~doc:"Per-worker crash probability.")
  in
  let slowdown_rate =
    Arg.(
      value & opt float 0.01
      & info [ "slowdown-rate" ] ~docv:"R" ~doc:"Per-worker slowdown probability.")
  in
  let fetch_failure =
    Arg.(
      value & opt float 0.01
      & info [ "fetch-failure" ] ~docv:"Q" ~doc:"Per-link fetch-failure probability.")
  in
  let horizon =
    Arg.(
      value & opt float 20.
      & info [ "horizon" ] ~docv:"T" ~doc:"Fault-plan horizon (simulated time).")
  in
  let timeline =
    Arg.(
      value
      & opt (some string) None
      & info [ "timeline" ] ~docv:"FILE"
          ~doc:
            "Write the simulated schedule as a (downsampled) Chrome trace-event \
             Gantt to $(docv).")
  in
  let timeline_events =
    Arg.(
      value & opt int 20_000
      & info [ "timeline-events" ] ~docv:"N"
          ~doc:"Interval budget for --timeline (deterministic 1-in-k downsampling).")
  in
  let run workers tasks crash_rate slowdown_rate fetch_failure horizon timeline
      timeline_events seed () =
    let r, outcome =
      Mrsim_exp.run ~workers ~tasks ~crash_rate ~slowdown_rate ~fetch_failure ~horizon
        ~seed ()
    in
    Mrsim_exp.print r;
    (match timeline with
    | None -> ()
    | Some path ->
        Mapreduce.Timeline.write_chrome ~max_events:timeline_events outcome path;
        Printf.eprintf "Timeline written to %s\n%!" path);
    Some (table_output Mrsim_exp.header [ Mrsim_exp.row r ])
  in
  Registry.entry ~name:"mrsim"
    ~synopsis:
      "Million-scale fault-injected MapReduce simulation (single instrumented run)."
    Term.(
      const run $ workers $ tasks $ crash_rate $ slowdown_rate $ fetch_failure
      $ horizon $ timeline $ timeline_events $ Registry.seed)

let all =
  [
    fig4; nonlinear; sort; ratio; partition; mapreduce; time; ablations; faults; mrsim;
  ]
