open Cmdliner

let table_output header rows = Registry.table ~header ~rows

let fig4 =
  let run profile trials seed processors () =
    let points = Fig4.sweep ~processor_counts:processors ~trials ~seed profile in
    Fig4.print
      ~title:
        (Printf.sprintf "Figure 4 reproduction, %s speeds (%d trials/point)"
           (Platform.Profiles.name profile) trials)
      points;
    let header, rows = Fig4.csv points in
    Some (table_output header rows)
  in
  Registry.entry ~name:"fig4"
    ~synopsis:"Reproduce the Figure 4 communication-ratio sweep."
    Term.(
      const run $ Registry.profile
      $ Registry.trials ()
      $ Registry.seed
      $ Registry.processor_counts ~default:Fig4.default_processor_counts)

let nonlinear =
  let alphas =
    Arg.(
      value & opt (list float) [ 1.5; 2.; 3. ]
      & info [ "alpha" ] ~docv:"A,..." ~doc:"Cost exponents.")
  in
  let run alphas processors () =
    Nonlinear_exp.print (Nonlinear_exp.run ~alphas ~processor_counts:processors ());
    None
  in
  Registry.entry ~name:"nonlinear"
    ~synopsis:"E1: the no-free-lunch fraction for N^alpha loads."
    Term.(
      const run $ alphas $ Registry.processor_counts ~default:[ 2; 4; 16; 64; 256 ])

let sort =
  let sizes =
    Arg.(
      value
      & opt (list int) [ 10_000; 100_000; 1_000_000 ]
      & info [ "n" ] ~docv:"N,..." ~doc:"Input sizes.")
  in
  let run sizes processors () =
    Sorting_exp.print (Sorting_exp.run ~sizes ~processor_counts:processors ());
    Sorting_exp.print_hetero (Sorting_exp.run_hetero ~processor_counts:processors ());
    None
  in
  Registry.entry ~name:"sort" ~synopsis:"E2: sorting as an almost-divisible load."
    Term.(const run $ sizes $ Registry.processor_counts ~default:[ 4; 16; 64 ])

let ratio =
  let factors =
    Arg.(
      value
      & opt (list float) [ 1.; 4.; 9.; 16.; 25.; 49.; 100. ]
      & info [ "k" ] ~docv:"K,..." ~doc:"Fast/slow speed factors.")
  in
  let p = Arg.(value & opt int 20 & info [ "p" ] ~docv:"P" ~doc:"Platform size.") in
  let run factors p () =
    Ratio_exp.print_bimodal (Ratio_exp.run_bimodal ~p ~factors ());
    Ratio_exp.print_general (Ratio_exp.run_general ());
    None
  in
  Registry.entry ~name:"ratio" ~synopsis:"E3: the Commhom/Commhet ratio bounds."
    Term.(const run $ factors $ p)

let partition =
  let speeds =
    Arg.(
      value
      & opt (list float) [ 1.; 1.; 2.; 4.; 4.; 12. ]
      & info [ "speeds" ] ~docv:"S,..." ~doc:"Worker speeds.")
  in
  let platform_file =
    Arg.(
      value
      & opt (some file) None
      & info [ "platform" ] ~docv:"FILE"
          ~doc:"Read the platform from $(docv) (one worker per line: speed [bandwidth \
                [latency]]); overrides --speeds.")
  in
  let run platform_file speeds () =
    let star =
      match platform_file with
      | None -> Platform.Star.of_speeds speeds
      | Some path -> (
          match Platform.Parse.of_file path with
          | Ok star -> star
          | Error msg ->
              prerr_endline ("nldl: cannot read platform: " ^ msg);
              exit 1)
    in
    let layout = Partition.Strategies.het_layout star in
    print_string (Partition.Layout.render layout);
    Printf.printf "\nSum of half-perimeters %.4f, lower bound %.4f\n"
      (Partition.Layout.sum_half_perimeters layout)
      (Partition.Lower_bound.peri_sum ~areas:(Platform.Star.relative_speeds star));
    let r = Partition.Strategies.evaluate star in
    Printf.printf "Ratios to LB: het %.4f, hom %.4f, hom/k %.4f (k = %d)\n"
      r.Partition.Strategies.het r.Partition.Strategies.hom
      r.Partition.Strategies.hom_over_k r.Partition.Strategies.k;
    None
  in
  Registry.entry ~name:"partition"
    ~synopsis:"Partition a platform's outer-product domain (PERI-SUM)."
    Term.(const run $ platform_file $ speeds)

let mapreduce =
  let n = Arg.(value & opt int 512 & info [ "n" ] ~docv:"N" ~doc:"Vector size.") in
  let run n () =
    Mapreduce_exp.print (Mapreduce_exp.run ~n ());
    None
  in
  Registry.entry ~name:"mapreduce"
    ~synopsis:"Affinity-aware MapReduce scheduling ablation."
    Term.(const run $ n)

let time =
  let run profile trials () =
    Time_exp.print
      ~profile:(Platform.Profiles.name profile)
      (Time_exp.run ~trials profile);
    None
  in
  Registry.entry ~name:"time"
    ~synopsis:"E4: strategy makespans (not just volumes) as the network slows down."
    Term.(const run $ Registry.profile $ Registry.trials ~default:10 ())

let ablations =
  let run () () =
    Ablations.print_all ();
    None
  in
  Registry.entry ~name:"ablations"
    ~synopsis:
      "Ablation studies: partitioner choice, SUMMA panels, 2.5D replication, splitter \
       selection, speculation, dispatch order."
    Term.(const run $ const ())

let faults =
  let tasks =
    Arg.(value & opt int 24 & info [ "tasks" ] ~docv:"N" ~doc:"Map tasks per trial.")
  in
  let p = Arg.(value & opt int 4 & info [ "p" ] ~docv:"P" ~doc:"Platform size.") in
  let crash_rates =
    Arg.(
      value
      & opt (list float) [ 0.; 0.3; 0.6 ]
      & info [ "crash-rates" ] ~docv:"R,..." ~doc:"Per-worker crash probabilities.")
  in
  let sigmas =
    Arg.(
      value & opt (list float) [ 0.; 0.8 ]
      & info [ "sigmas" ] ~docv:"S,..." ~doc:"Straggler-jitter sigmas.")
  in
  let fetch_failure =
    Arg.(
      value & opt float 0.05
      & info [ "fetch-failure" ] ~docv:"Q" ~doc:"Per-link fetch-failure probability.")
  in
  let run tasks p crash_rates sigmas fetch_failure trials seed domains () =
    let rows =
      Faults_exp.run ~tasks ~p ~crash_rates ~sigmas ~fetch_failure ~trials ~seed
        ?domains ()
    in
    Faults_exp.print rows;
    let header, csv_rows = Faults_exp.csv rows in
    Some (Registry.table ~header ~rows:csv_rows)
  in
  Registry.entry ~name:"faults"
    ~synopsis:
      "Robustness: makespan degradation under injected crashes, stragglers and fetch \
       failures."
    Term.(
      const run $ tasks $ p $ crash_rates $ sigmas $ fetch_failure
      $ Registry.trials ~default:5 ()
      $ Registry.seed $ Registry.domains)

let mrsim =
  let workers =
    Arg.(value & opt int 100_000 & info [ "workers" ] ~docv:"P" ~doc:"Worker count.")
  in
  let tasks =
    Arg.(value & opt int 1_000_000 & info [ "tasks" ] ~docv:"N" ~doc:"Map tasks.")
  in
  let crash_rate =
    Arg.(
      value & opt float 0.001
      & info [ "crash-rate" ] ~docv:"R" ~doc:"Per-worker crash probability.")
  in
  let slowdown_rate =
    Arg.(
      value & opt float 0.01
      & info [ "slowdown-rate" ] ~docv:"R" ~doc:"Per-worker slowdown probability.")
  in
  let fetch_failure =
    Arg.(
      value & opt float 0.01
      & info [ "fetch-failure" ] ~docv:"Q" ~doc:"Per-link fetch-failure probability.")
  in
  let horizon =
    Arg.(
      value & opt float 20.
      & info [ "horizon" ] ~docv:"T" ~doc:"Fault-plan horizon (simulated time).")
  in
  let timeline =
    Arg.(
      value
      & opt (some string) None
      & info [ "timeline" ] ~docv:"FILE"
          ~doc:
            "Write the simulated schedule as a (downsampled) Chrome trace-event \
             Gantt to $(docv).")
  in
  let timeline_events =
    Arg.(
      value & opt int 20_000
      & info [ "timeline-events" ] ~docv:"N"
          ~doc:"Interval budget for --timeline (deterministic 1-in-k downsampling).")
  in
  let run workers tasks crash_rate slowdown_rate fetch_failure horizon timeline
      timeline_events seed () =
    let r, outcome =
      Mrsim_exp.run ~workers ~tasks ~crash_rate ~slowdown_rate ~fetch_failure ~horizon
        ~seed ()
    in
    Mrsim_exp.print r;
    (match timeline with
    | None -> ()
    | Some path ->
        Mapreduce.Timeline.write_chrome ~max_events:timeline_events outcome path;
        Printf.eprintf "Timeline written to %s\n%!" path);
    Some (table_output Mrsim_exp.header [ Mrsim_exp.row r ])
  in
  Registry.entry ~name:"mrsim"
    ~synopsis:
      "Million-scale fault-injected MapReduce simulation (single instrumented run)."
    Term.(
      const run $ workers $ tasks $ crash_rate $ slowdown_rate $ fetch_failure
      $ horizon $ timeline $ timeline_events $ Registry.seed)

(* --- the query plane: nldl serve / nldl query --------------------------- *)

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

let serve =
  let http =
    Arg.(
      value
      & opt (some int) None
      & info [ "http" ] ~docv:"PORT"
          ~doc:"Also serve the line protocol on 127.0.0.1:$(docv).")
  in
  let cache =
    Arg.(
      value & opt int Serve.Batch.default_config.Serve.Batch.cache_capacity
      & info [ "cache" ] ~docv:"N" ~doc:"Response-cache capacity (LRU entries).")
  in
  let max_inflight =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-inflight" ] ~docv:"N"
          ~doc:"Domains evaluating a batch concurrently (default: pool size).")
  in
  let queue_depth =
    Arg.(
      value & opt int Serve.Batch.default_config.Serve.Batch.queue_depth
      & info [ "queue-depth" ] ~docv:"N"
          ~doc:"Cache misses admitted per batch; overflow is rejected.")
  in
  let deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"S" ~doc:"Per-request wall-clock budget in seconds.")
  in
  let run socket http cache max_inflight queue_depth deadline domains () =
    let batch =
      {
        Serve.Batch.cache_capacity = cache;
        max_inflight =
          (match max_inflight with
          | Some n -> n
          | None -> Serve.Batch.default_config.Serve.Batch.max_inflight);
        queue_depth;
        deadline_s = deadline;
      }
    in
    let socket_path =
      match socket with Some p -> p | None -> Serve.Daemon.default_socket_path ()
    in
    let pool =
      match domains with
      | Some d -> Exec.Pool.get_global ~at_least:d ()
      | None -> Exec.Pool.get_global ()
    in
    let engine =
      Serve.Daemon.run ~pool
        ~on_ready:(fun () -> Printf.printf "nldl serve: listening on %s\n%!" socket_path)
        { Serve.Daemon.socket_path; tcp_port = http; batch }
    in
    Some
      (Registry.table
         ~header:[ "stat"; "value" ]
         ~rows:
           [
             [ "requests"; string_of_int (Serve.Batch.requests engine) ];
             [ "cache_hits"; string_of_int (Serve.Batch.hits engine) ];
             [ "cache_misses"; string_of_int (Serve.Batch.misses engine) ];
             [ "cache_evictions"; string_of_int (Serve.Batch.evictions engine) ];
           ])
  in
  Registry.entry ~name:"serve"
    ~synopsis:
      "Run the batched scheduling daemon: one JSON request per line over a Unix \
       socket (or --http), canonical Api.Response lines back, repeats answered \
       from a bounded LRU."
    Term.(
      const run $ socket_arg $ http $ cache $ max_inflight $ queue_depth $ deadline
      $ Registry.domains)

let query =
  let inline =
    Arg.(
      value
      & opt (some string) None
      & info [ "inline" ] ~docv:"JSON"
          ~doc:"Evaluate one request line and print the response line.")
  in
  let file =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Read one request per line from $(docv) (\"-\" = stdin).")
  in
  let read_lines = function
    | "-" -> In_channel.input_lines In_channel.stdin
    | path -> In_channel.with_open_text path In_channel.input_lines
  in
  let run inline socket file () =
    let lines =
      match (inline, file) with
      | Some line, None -> Some [ line ]
      | None, Some path -> Some (read_lines path)
      | Some _, Some _ ->
          prerr_endline "nldl query: give --inline or a FILE, not both";
          None
      | None, None ->
          prerr_endline "nldl query: nothing to do; give --inline JSON or a FILE";
          None
    in
    match lines with
    | None -> (None, 2)
    | Some lines ->
        (match socket with
        | Some path ->
            let c = Serve.Client.connect_unix path in
            Fun.protect
              ~finally:(fun () -> Serve.Client.close c)
              (fun () ->
                List.iter (fun l -> print_endline (Serve.Client.request c l)) lines)
        | None ->
            List.iter
              (fun l -> print_endline (Api.Response.to_line (Api.Eval.eval_line l)))
              lines);
        (None, 0)
  in
  Registry.gated ~name:"query"
    ~synopsis:
      "Answer scheduling queries (one JSON request per line) in-process, or \
       forward them to a running daemon with --socket."
    Term.(const run $ inline $ socket_arg $ file)

let all =
  [
    fig4; nonlinear; sort; ratio; partition; mapreduce; time; ablations; faults; mrsim;
    serve; query;
  ]
