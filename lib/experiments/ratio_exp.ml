module Profiles = Platform.Profiles
module Rng = Numerics.Rng

type bimodal_row = {
  factor : float;
  p : int;
  measured_rho : float;
  hom_over_lb : float;
  bound : float;
  sqrt_bound : float;
}

type general_row = {
  p : int;
  profile : string;
  measured_rho : float;
  general_bound : float;
}

let measured_rho star =
  let r = Partition.Strategies.evaluate star in
  r.Partition.Strategies.hom /. r.Partition.Strategies.het

let run_bimodal ?(p = 20) ?(factors = [ 1.; 4.; 9.; 16.; 25.; 49.; 100. ]) () =
  let rng = Rng.create ~seed:3 () in
  List.map
    (fun factor ->
      let star =
        Profiles.generate rng ~p (Profiles.Bimodal { slow = 1.; factor })
      in
      let r = Partition.Strategies.evaluate star in
      {
        factor;
        p;
        measured_rho = r.Partition.Strategies.hom /. r.Partition.Strategies.het;
        hom_over_lb = r.Partition.Strategies.hom;
        bound = Platform.Metrics.bimodal_rho_bound ~factor;
        sqrt_bound = sqrt factor -. 1.;
      })
    factors

let run_general ?(processor_counts = [ 10; 40; 100 ]) ?(trials = 20) ?(seed = 5) ?domains
    () =
  let rng = Rng.create ~seed () in
  let rows = ref [] in
  let profiles = [ Profiles.paper_uniform; Profiles.paper_lognormal ] in
  List.iter
    (fun profile ->
      List.iter
        (fun p ->
          let rhos = Array.make trials 0. in
          let bounds = Array.make trials 0. in
          (* Pre-split per-trial RNGs in sequential order, then run the
             trials on the domain pool: same streams, same output. *)
          let rngs = Array.make trials rng in
          for t = 0 to trials - 1 do
            rngs.(t) <- Rng.split rng
          done;
          Numerics.Parallel.parallel_for ?domains trials (fun t ->
              Obs.Trace.begin_span "ratio.trial";
              let star = Profiles.generate rngs.(t) ~p profile in
              rhos.(t) <- measured_rho star;
              bounds.(t) <- Platform.Metrics.hom_over_het_bound star;
              Obs.Trace.end_span "ratio.trial");
          rows :=
            {
              p;
              profile = Profiles.name profile;
              measured_rho = Numerics.Stats.mean rhos;
              general_bound = Numerics.Stats.mean bounds;
            }
            :: !rows)
        processor_counts)
    profiles;
  List.rev !rows

let print_bimodal rows =
  Report.section "E3 (paper §4.1.3): rho on half-slow / half-k-fast platforms";
  let table =
    Numerics.Ascii_table.create
      ~headers:
        [ "k"; "p"; "rho measured"; "hom/LB"; "(1+k)/(1+sqrt k)"; "sqrt k - 1" ]
  in
  List.iter
    (fun r ->
      Numerics.Ascii_table.add_row table
        [
          Report.float_cell r.factor;
          Report.int_cell r.p;
          Report.float_cell ~digits:4 r.measured_rho;
          Report.float_cell ~digits:4 r.hom_over_lb;
          Report.float_cell ~digits:4 r.bound;
          Report.float_cell ~digits:4 r.sqrt_bound;
        ])
    rows;
  Numerics.Ascii_table.print table

let print_general rows =
  Report.subsection "E3b: general bound rho >= (4/7)·Σs/(√s1·Σ√s)";
  let table =
    Numerics.Ascii_table.create
      ~headers:[ "profile"; "p"; "rho measured"; "(4/7) bound" ]
  in
  List.iter
    (fun r ->
      Numerics.Ascii_table.add_row table
        [
          r.profile;
          Report.int_cell r.p;
          Report.float_cell ~digits:4 r.measured_rho;
          Report.float_cell ~digits:4 r.general_bound;
        ])
    rows;
  Numerics.Ascii_table.print table
