(* Million-scale fault-injected MapReduce simulation, as a catalog
   experiment: the same workload the bench gates events/sec on
   (ISSUE 7's 10^5 workers x 10^6 tasks headline), runnable at any
   scale with the full observability stack — per-event-type counters,
   wait/service/fetch/retry latency histograms, sampled heap depth —
   and an optional downsampled sim-time Gantt through the shared
   Chrome-trace bridge. *)

module Scheduler = Mapreduce.Scheduler

type result = {
  workers : int;
  tasks : int;
  events : int;
  seconds : float;
  events_per_sec : float;
  makespan : float;
  retries : int;
  crashes : int;
  duplicates : int;
  unfinished : int;
}

let run ?(workers = 100_000) ?(tasks = 1_000_000) ?(crash_rate = 0.001)
    ?(slowdown_rate = 0.01) ?(fetch_failure = 0.01) ?(horizon = 20.)
    ?(seed = 42) () =
  if workers < 1 then invalid_arg "Mrsim_exp.run: workers must be >= 1";
  if tasks < 1 then invalid_arg "Mrsim_exp.run: tasks must be >= 1";
  let star = Platform.Star.of_speeds (List.init workers (fun _ -> 1.)) in
  let task_set =
    Array.init tasks (fun i -> Mapreduce.Task.make ~id:i ~data_ids:[| i |] ~cost:1.)
  in
  let faults =
    Fault.Plan.generate
      ~rng:(Numerics.Rng.create ~seed ())
      ~p:workers ~horizon ~crash_rate ~slowdown_rate ~fetch_failure ()
  in
  let t0 = Obs.Clock.now_ns () in
  let outcome = Scheduler.run ~faults star ~tasks:task_set ~block_size:(fun _ -> 1.) in
  let seconds = Obs.Clock.ns_to_s (Obs.Clock.now_ns () - t0) in
  let events = outcome.Scheduler.events_processed in
  ( {
      workers;
      tasks;
      events;
      seconds;
      events_per_sec = (if seconds > 0. then float_of_int events /. seconds else 0.);
      makespan = outcome.Scheduler.makespan;
      retries = outcome.Scheduler.retries;
      crashes = outcome.Scheduler.crashes_survived;
      duplicates = outcome.Scheduler.duplicates;
      unfinished = List.length outcome.Scheduler.unfinished;
    },
    outcome )

let header =
  [
    "workers";
    "tasks";
    "events";
    "seconds";
    "events_per_sec";
    "makespan";
    "retries";
    "crashes";
    "duplicates";
    "unfinished";
  ]

let row r =
  [
    string_of_int r.workers;
    string_of_int r.tasks;
    string_of_int r.events;
    Printf.sprintf "%.4f" r.seconds;
    Printf.sprintf "%.4e" r.events_per_sec;
    Printf.sprintf "%.4f" r.makespan;
    string_of_int r.retries;
    string_of_int r.crashes;
    string_of_int r.duplicates;
    string_of_int r.unfinished;
  ]

let print r =
  Printf.printf
    "mrsim: %d workers x %d tasks: %d events in %.3f s (%.3e events/sec)\n\
     makespan %.2f, %d retries, %d crashes survived, %d speculative copies, %d \
     unfinished\n\
     %!"
    r.workers r.tasks r.events r.seconds r.events_per_sec r.makespan r.retries
    r.crashes r.duplicates r.unfinished
