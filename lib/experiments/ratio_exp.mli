(** Experiment E3 (paper Section 4.1.3): the Commhom/Commhet ratio
    bound.

    On the half-slow / half-[k]-fast platform the paper proves
    [ρ ≥ (1+k)/(1+√k) ≥ √k - 1]; the driver measures the actual ratio
    on that platform family and on random platforms, checking the
    general bound [ρ ≥ (4/7)·Σs/(√s₁·Σ√s)]. *)

type bimodal_row = {
  factor : float;  (** [k] *)
  p : int;
  measured_rho : float;  (** [Commhom / Commhet], measured *)
  hom_over_lb : float;
      (** [Commhom / LBComm]: the quantity the paper's closed form
          bounds (its analysis takes [Commhet ≈ LBComm]) *)
  bound : float;  (** [(1+k)/(1+√k)] *)
  sqrt_bound : float;  (** [√k - 1] *)
}

type general_row = {
  p : int;
  profile : string;
  measured_rho : float;
  general_bound : float;  (** [(4/7)·Σs/(√s₁·Σ√s)] *)
}

val run_bimodal : ?p:int -> ?factors:float list -> unit -> bimodal_row list

val run_general :
  ?processor_counts:int list ->
  ?trials:int ->
  ?seed:int ->
  ?domains:int ->
  unit ->
  general_row list
(** Trials run on the shared domain pool with pre-split per-trial RNGs;
    output is identical at any [domains]. *)

val print_bimodal : bimodal_row list -> unit
val print_general : general_row list -> unit
