(** Ablation studies of the design choices DESIGN.md calls out:

    - PERI-SUM column DP vs. recursive bisection vs. the lower bound;
    - SUMMA panel width: words constant, messages dropping;
    - 2.5D replication: bandwidth saved per extra memory;
    - sample sort vs. histogram sort splitter quality;
    - speculative re-execution under straggler jitter;
    - dispatch order sensitivity of affine one-port DLT. *)

type partitioner_row = {
  p : int;
  profile : string;
  dp_ratio : float;  (** column-DP cost / lower bound *)
  bisection_ratio : float;
}

type summa_row = { panel : int; words : int; messages : int }

type c25d_row = {
  p : int;
  c : int;
  per_processor : float;
  total : float;
  speedup : float;
}

type splitter_row = {
  n : int;
  p : int;
  sample_ratio : float;  (** max-bucket/ideal, sample sort *)
  histogram_ratio : float;
  histogram_passes : int;
  psrs_ratio : float;  (** regular sampling (PSRS) *)
}

type speculation_row = {
  sigma : float;
  plain_makespan : float;  (** mean over seeds *)
  speculative_makespan : float;
  duplicates : float;  (** mean speculative copies *)
}

type ordering_row = {
  p : int;
  spread : float;  (** worst/best - 1 over all dispatch orders *)
  latency_scale : float;
}

type matmul_row = {
  algorithm : string;
  n : int;
  p : int;
  words : int;
  messages : int;
  correct : bool;  (** result checked against [Matrix.mul] *)
}

val partitioners :
  ?processor_counts:int list -> ?trials:int -> ?seed:int -> unit -> partitioner_row list

val summa_panels : ?n:int -> ?panels:int list -> unit -> summa_row list
val c25d : ?n:int -> ?ps:int list -> unit -> c25d_row list

val splitters :
  ?n:int -> ?processor_counts:int list -> ?seed:int -> unit -> splitter_row list

val speculation :
  ?sigmas:float list -> ?trials:int -> ?tasks:int -> ?p:int -> unit -> speculation_row list
(** [?trials] replaces the deprecated [?seeds] spelling (seed [1000 + t]
    per trial, unchanged streams). *)

val ordering :
  ?p:int -> ?latency_scales:float list -> ?seed:int -> unit -> ordering_row list

val matmul_algorithms : ?n:int -> ?grid:int -> unit -> matmul_row list
(** Rank-1 zones, SUMMA (two panel widths) and Cannon on the same
    [grid × grid] platform: words, messages and a correctness check. *)

type topology_row = {
  uplink : float;  (** cluster uplink bandwidth *)
  loss : float;  (** aggregation loss: stranded compute fraction *)
  tree_vs_flat : float;  (** tree makespan / flat-summary makespan *)
}

val topology : ?uplinks:float list -> ?total:float -> unit -> topology_row list
(** Two 8-worker clusters plus two direct workers; sweeps the cluster
    uplinks to show when hierarchy starts to bite. *)

val print_partitioners : partitioner_row list -> unit
val print_summa : summa_row list -> unit
val print_c25d : c25d_row list -> unit
val print_splitters : splitter_row list -> unit
val print_speculation : speculation_row list -> unit
val print_ordering : ordering_row list -> unit
val print_matmul : matmul_row list -> unit
val print_topology : topology_row list -> unit

val print_all : unit -> unit
(** Run and print every ablation with default parameters. *)
