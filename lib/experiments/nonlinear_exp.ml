module Star = Platform.Star
module Profiles = Platform.Profiles
module Rng = Numerics.Rng

type row = {
  alpha : float;
  p : int;
  predicted : float;
  measured_homogeneous : float;
  measured_heterogeneous : float;
  makespan : float;
}

let measured_fraction star cost ~total =
  let allocation, _ =
    Dlt.Nonlinear.equal_finish_allocation Dlt.Schedule.Parallel star cost ~total
  in
  Dlt.Fraction.done_fraction cost ~allocation ~total

let run ?(alphas = [ 1.5; 2.; 3. ]) ?(processor_counts = [ 2; 4; 16; 64; 256 ])
    ?(total = 1e4) ?(seed = 7) () =
  let rng = Rng.create ~seed () in
  let rows = ref [] in
  List.iter
    (fun alpha ->
      let cost = Dlt.Cost_model.of_alpha alpha in
      List.iter
        (fun p ->
          Obs.Trace.begin_span "nonlinear.trial";
          let hom = Profiles.generate (Rng.split rng) ~p Profiles.paper_homogeneous in
          let het = Profiles.generate (Rng.split rng) ~p Profiles.paper_uniform in
          let allocation, makespan =
            Dlt.Nonlinear.equal_finish_allocation Dlt.Schedule.Parallel hom cost ~total
          in
          let measured_homogeneous =
            Dlt.Fraction.done_fraction cost ~allocation ~total
          in
          rows :=
            {
              alpha;
              p;
              predicted = Dlt.Fraction.power_partial_fraction ~alpha ~p;
              measured_homogeneous;
              measured_heterogeneous = measured_fraction het cost ~total;
              makespan;
            }
            :: !rows;
          Obs.Trace.end_span "nonlinear.trial")
        processor_counts)
    alphas;
  List.rev !rows

let print rows =
  Report.section "E1 (paper §2): divisible round of an N^alpha load — work fraction done";
  let table =
    Numerics.Ascii_table.create
      ~headers:
        [ "alpha"; "p"; "p^(1-a) predicted"; "measured (hom)"; "measured (het)"; "makespan" ]
  in
  List.iter
    (fun r ->
      Numerics.Ascii_table.add_row table
        [
          Report.float_cell r.alpha;
          Report.int_cell r.p;
          Report.float_cell ~digits:5 r.predicted;
          Report.float_cell ~digits:5 r.measured_homogeneous;
          Report.float_cell ~digits:5 r.measured_heterogeneous;
          Report.float_cell r.makespan;
        ])
    rows;
  Numerics.Ascii_table.print table
