(* Parallel Sorting by Regular Sampling, plus interaction tests that
   combine MapReduce features (affinity + speculation + combiner +
   placement) and exercise the N log N cost model through the nonlinear
   solver. *)

module Psrs = Sortlib.Psrs
module Rng = Numerics.Rng
module Star = Platform.Star

let checkb = Alcotest.(check bool)

let is_sorted a =
  let ok = ref true in
  for i = 0 to Array.length a - 2 do
    if a.(i) > a.(i + 1) then ok := false
  done;
  !ok

let test_psrs_sorts () =
  let rng = Rng.create ~seed:161 () in
  let keys = Array.init 20_000 (fun _ -> Rng.float rng) in
  let result = Psrs.sort keys ~p:8 in
  checkb "sorted" true (is_sorted result.Psrs.sorted);
  let reference = Array.copy keys in
  Array.sort Float.compare reference;
  Alcotest.(check (array (float 0.))) "permutation" reference result.Psrs.sorted

let test_psrs_guarantee () =
  (* Distinct keys: no bucket beyond 2·N/p. *)
  let rng = Rng.create ~seed:162 () in
  let keys = Array.init 50_000 (fun _ -> Rng.float rng) in
  let result = Psrs.sort keys ~p:16 in
  checkb "2N/p guarantee" true (Psrs.max_bucket_ratio result <= 2.)

let test_psrs_tighter_than_random_sampling () =
  let rng = Rng.create ~seed:163 () in
  let keys = Array.init 50_000 (fun _ -> Rng.float rng) in
  let psrs = Psrs.sort keys ~p:16 in
  let splitters =
    Sortlib.Sample_sort.choose_splitters ~cmp:Float.compare rng keys ~p:16 ~s:16
  in
  let buckets = Sortlib.Sample_sort.partition ~cmp:Float.compare keys ~splitters in
  (* Regular sampling with p samples/worker usually beats a small random
     sample; assert it is at least not catastrophically worse. *)
  checkb "competitive balance" true
    (Psrs.max_bucket_ratio psrs
    <= Sortlib.Sample_sort.max_bucket_ratio buckets +. 0.5)

let test_psrs_edge_cases () =
  checkb "empty" true ((Psrs.sort [||] ~p:4).Psrs.sorted = [||]);
  let single = Psrs.sort [| 3.; 1.; 2. |] ~p:1 in
  Alcotest.(check (array (float 0.))) "p=1" [| 1.; 2.; 3. |] single.Psrs.sorted;
  let tiny = Psrs.sort [| 5.; 4. |] ~p:8 in
  checkb "p > n" true (is_sorted tiny.Psrs.sorted)

let test_psrs_duplicates () =
  let rng = Rng.create ~seed:164 () in
  let keys = Array.init 5_000 (fun _ -> float_of_int (Rng.int rng 5)) in
  let result = Psrs.sort keys ~p:8 in
  checkb "sorted with heavy duplicates" true (is_sorted result.Psrs.sorted);
  Alcotest.(check int) "conserved" 5_000 (Array.fold_left ( + ) 0 result.Psrs.bucket_sizes)

let qcheck_psrs =
  QCheck.Test.make ~name:"psrs sorts arbitrary arrays" ~count:100
    QCheck.(pair (array_of_size Gen.(int_range 0 400) (float_range (-10.) 10.)) (int_range 1 9))
    (fun (keys, p) ->
      let result = Psrs.sort keys ~p in
      let reference = Array.copy keys in
      Array.sort Float.compare reference;
      result.Psrs.sorted = reference)

(* --- feature interactions --- *)

let test_affinity_with_speculation_and_jitter () =
  let rng = Rng.create ~seed:165 () in
  let star = Platform.Profiles.generate rng ~p:4 Platform.Profiles.paper_uniform in
  let tasks =
    Array.init 32 (fun i ->
        Mapreduce.Task.make ~id:i ~data_ids:[| i mod 6 |] ~cost:5.)
  in
  let outcome =
    Mapreduce.Scheduler.run
      ~config:
        {
          Mapreduce.Scheduler.default_config with
          policy = Mapreduce.Scheduler.Affinity;
          speculation = Mapreduce.Scheduler.At_idle;
        }
      ~jitter:(Rng.create ~seed:9 (), 1.)
      star ~tasks
      ~block_size:(fun _ -> 2.)
  in
  Alcotest.(check int) "all complete" 32
    (Array.fold_left (fun acc c -> if Float.is_finite c then acc + 1 else acc) 0
       outcome.Mapreduce.Scheduler.completion);
  checkb "makespan positive" true (outcome.Mapreduce.Scheduler.makespan > 0.)

let test_combiner_with_weighted_placement () =
  let docs = Array.make 6 "x y x x y z" in
  let star = Star.of_speeds ~bandwidth:1e6 [ 1.; 1.; 6. ] in
  let job = Mapreduce.Jobs.word_count ~docs in
  let reduce _ vs = List.fold_left ( + ) 0 vs in
  let result =
    Mapreduce.Engine.run ~combine:reduce
      ~place:(Mapreduce.Shuffle.speed_weighted_placement star)
      star job ~reduce
  in
  Alcotest.(check (list (pair string int)))
    "counts correct"
    [ ("x", 18); ("y", 12); ("z", 6) ]
    (List.sort compare result.Mapreduce.Engine.output)

let test_nlogn_nonlinear_solver () =
  (* §3 via the solver: an N log N load benefits from many workers far
     more than an N² one. *)
  let cost = Dlt.Cost_model.N_log_n in
  let star p = Star.of_speeds (List.init p (fun _ -> 1.)) in
  let allocation, _ =
    Dlt.Nonlinear.equal_finish_allocation Dlt.Schedule.Parallel (star 8) cost ~total:10_000.
  in
  Array.iter
    (fun n -> checkb "near-even shares" true (Float.abs (n -. 1250.) < 1.))
    allocation;
  let fraction p =
    let allocation, _ =
      Dlt.Nonlinear.equal_finish_allocation Dlt.Schedule.Parallel (star p) cost
        ~total:10_000.
    in
    Dlt.Fraction.done_fraction cost ~allocation ~total:10_000.
  in
  (* Almost-divisible: at N = 10^4, 16 workers still execute ~70% of the
     sequential work, versus 6% for N². *)
  checkb "nlogn almost divisible" true (fraction 16 > 0.6);
  let quadratic, _ =
    Dlt.Nonlinear.equal_finish_allocation Dlt.Schedule.Parallel (star 16)
      (Dlt.Cost_model.Power 2.) ~total:10_000.
  in
  checkb "quadratic is not" true
    (Dlt.Fraction.done_fraction (Dlt.Cost_model.Power 2.) ~allocation:quadratic
       ~total:10_000.
    < 0.1)

let suites =
  [
    ( "psrs",
      [
        Alcotest.test_case "sorts" `Quick test_psrs_sorts;
        Alcotest.test_case "2N/p guarantee" `Quick test_psrs_guarantee;
        Alcotest.test_case "competitive with sampling" `Quick
          test_psrs_tighter_than_random_sampling;
        Alcotest.test_case "edge cases" `Quick test_psrs_edge_cases;
        Alcotest.test_case "duplicates" `Quick test_psrs_duplicates;
        QCheck_alcotest.to_alcotest qcheck_psrs;
      ] );
    ( "feature interactions",
      [
        Alcotest.test_case "affinity + speculation + jitter" `Quick
          test_affinity_with_speculation_and_jitter;
        Alcotest.test_case "combiner + weighted placement" `Quick
          test_combiner_with_weighted_placement;
        Alcotest.test_case "N log N through the solver" `Quick test_nlogn_nonlinear_solver;
      ] );
  ]
