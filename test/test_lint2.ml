(* Interprocedural lint v2: callgraph resolution, parallel-escape
   fixpoint, R401/R402/R403 fixtures (trigger / non-trigger /
   suppression), driver robustness on degenerate inputs, the phase-1
   cache round-trip, and real-tree graph sanity.  Multi-file fixtures go
   through [Lint.Driver.lint_strings] / [analyze_strings] so no temp
   files are needed except for the cache tests. *)

let rules_of findings = List.map (fun (f : Lint.Finding.t) -> f.rule) findings
let has rule findings = List.mem rule (rules_of findings)

let fires rule units () =
  let fs = Lint.Driver.lint_strings units in
  Alcotest.(check bool) (rule ^ " fires") true (has rule fs)

let silent rule units () =
  let fs = Lint.Driver.lint_strings units in
  Alcotest.(check bool) (rule ^ " silent") false (has rule fs)

(* One node answering to [name], or fail the test. *)
let node_of g name =
  match Lint.Callgraph.find g name with
  | [ id ] -> id
  | ids ->
      Alcotest.failf "expected exactly one node for %s, got %d" name
        (List.length ids)

(* ------------------------------------------------------------------ *)
(* Callgraph: resolution across modules.                               *)

let state_ml = "let counter = ref 0\nlet bump () = counter := !counter + 1\n"

let callgraph =
  [
    Alcotest.test_case "qualified call resolves across files" `Quick (fun () ->
        let g, _, _ =
          Lint.Driver.analyze_strings
            [
              ("lib/fix/state.ml", state_ml);
              ("lib/fix/user.ml", "let tick () = Fix.State.bump ()\n");
            ]
        in
        let bump = node_of g "Fix.State.bump" in
        let tick = node_of g "Fix.User.tick" in
        Alcotest.(check bool)
          "tick -> bump edge" true
          (List.mem bump (Lint.Callgraph.succs g tick)));
    Alcotest.test_case "open-scoped bare call resolves" `Quick (fun () ->
        let g, _, _ =
          Lint.Driver.analyze_strings
            [
              ("lib/fix/state.ml", state_ml);
              ( "lib/fix/user.ml",
                "open Fix.State\nlet tick () = bump ()\n" );
            ]
        in
        let bump = node_of g "Fix.State.bump" in
        let tick = node_of g "Fix.User.tick" in
        Alcotest.(check bool)
          "tick -> bump edge" true
          (List.mem bump (Lint.Callgraph.succs g tick)));
    Alcotest.test_case "module-alias call resolves" `Quick (fun () ->
        let g, _, _ =
          Lint.Driver.analyze_strings
            [
              ("lib/fix/state.ml", state_ml);
              ( "lib/fix/user.ml",
                "module S = Fix.State\nlet tick () = S.bump ()\n" );
            ]
        in
        let bump = node_of g "Fix.State.bump" in
        let tick = node_of g "Fix.User.tick" in
        Alcotest.(check bool)
          "tick -> bump edge" true
          (List.mem bump (Lint.Callgraph.succs g tick)));
    Alcotest.test_case "unresolved external ref yields no edge" `Quick
      (fun () ->
        let g, _, _ =
          Lint.Driver.analyze_strings
            [ ("lib/fix/user.ml", "let go () = Stdlib.print_newline ()\n") ]
        in
        let go = node_of g "Fix.User.go" in
        Alcotest.(check (list int)) "no succs" [] (Lint.Callgraph.succs g go));
  ]

(* ------------------------------------------------------------------ *)
(* Escape: fixpoint over a fixture tree.                               *)

(* worker -> Fix.Work.step -> helper -> Fix.Deep.leaf, rooted at the
   closure passed to Exec.Pool.parallel_for; [idle] is unreachable. *)
let escape_tree =
  [
    ( "lib/fix/work.ml",
      "let step i = Fix.Work.helper i\nlet helper i = Fix.Deep.leaf i\n" );
    ("lib/fix/deep.ml", "let leaf i = i + 1\nlet idle () = 0\n");
    ( "lib/fix/driver.ml",
      "let run pool n = Exec.Pool.parallel_for pool n (fun i -> Fix.Work.step \
       i)\n" );
  ]

let escape =
  [
    Alcotest.test_case "transitive callees escape" `Quick (fun () ->
        let g, esc, _ = Lint.Driver.analyze_strings escape_tree in
        List.iter
          (fun name ->
            Alcotest.(check bool) (name ^ " escapes") true
              (Lint.Escape.escapes esc (node_of g name)))
          [ "Fix.Work.step"; "Fix.Work.helper"; "Fix.Deep.leaf" ]);
    Alcotest.test_case "unreferenced def does not escape" `Quick (fun () ->
        let g, esc, _ = Lint.Driver.analyze_strings escape_tree in
        Alcotest.(check bool) "idle stays" false
          (Lint.Escape.escapes esc (node_of g "Fix.Deep.idle")));
    Alcotest.test_case "submitting function does not escape" `Quick (fun () ->
        (* [run] contains the parallel_for call but is never referenced
           from inside its arguments. *)
        let g, esc, _ = Lint.Driver.analyze_strings escape_tree in
        Alcotest.(check bool) "run stays" false
          (Lint.Escape.escapes esc (node_of g "Fix.Driver.run")));
    Alcotest.test_case "witness names root and primitive" `Quick (fun () ->
        let g, esc, _ = Lint.Driver.analyze_strings escape_tree in
        match Lint.Escape.witness esc (node_of g "Fix.Deep.leaf") with
        | None -> Alcotest.fail "no witness for escaping leaf"
        | Some w ->
            Alcotest.(check string)
              "prim" "Exec.Pool.parallel_for" w.Lint.Escape.w_prim;
            Alcotest.(check string) "root" "Fix.Work.step" w.Lint.Escape.w_root);
    Alcotest.test_case "cross-file cycle reaches fixpoint" `Quick (fun () ->
        let g, esc, _ =
          Lint.Driver.analyze_strings
            [
              ("lib/fix/ping.ml", "let go n = Fix.Pong.go (n - 1)\n");
              ("lib/fix/pong.ml", "let go n = Fix.Ping.go (n - 1)\n");
              ( "lib/fix/driver.ml",
                "let run pool = Exec.Pool.parallel_for pool 2 (fun i -> \
                 Fix.Ping.go i)\n" );
            ]
        in
        Alcotest.(check bool) "ping escapes" true
          (Lint.Escape.escapes esc (node_of g "Fix.Ping.go"));
        Alcotest.(check bool) "pong escapes" true
          (Lint.Escape.escapes esc (node_of g "Fix.Pong.go")));
  ]

(* ------------------------------------------------------------------ *)
(* R401: cross-module race detector.                                   *)

let par_user body =
  Printf.sprintf
    "let run pool n = Exec.Pool.parallel_for pool n (fun _ -> %s)\n" body

let r401 =
  [
    Alcotest.test_case "fires on escaping write to module state" `Quick
      (fires "R401"
         [
           ("lib/fix/state.ml", state_ml);
           ("lib/fix/user.ml", par_user "Fix.State.bump ()");
         ]);
    Alcotest.test_case "fires on write directly inside closure" `Quick
      (fires "R401"
         [
           ("lib/fix/state.ml", "let total = ref 0\n");
           ("lib/fix/user.ml", par_user "Fix.State.total := 1");
         ]);
    Alcotest.test_case "silent without a parallel context" `Quick
      (silent "R401"
         [
           ("lib/fix/state.ml", state_ml);
           ("lib/fix/user.ml", "let tick () = Fix.State.bump ()\n");
         ]);
    Alcotest.test_case "silent on local ref" `Quick
      (silent "R401"
         [
           ( "lib/fix/user.ml",
             par_user "(let c = ref 0 in c := 1; !c)" );
         ]);
    Alcotest.test_case "silent under Mutex.protect" `Quick
      (silent "R401"
         [
           ( "lib/fix/state.ml",
             "let m = Mutex.create ()\nlet counter = ref 0\nlet bump () = \
              Mutex.protect m (fun () -> counter := !counter + 1)\n" );
           ("lib/fix/user.ml", par_user "Fix.State.bump ()");
         ]);
    Alcotest.test_case "silent on Atomic state" `Quick
      (silent "R401"
         [
           ( "lib/fix/state.ml",
             "let counter = Atomic.make 0\nlet bump () = Atomic.incr counter\n"
           );
           ("lib/fix/user.ml", par_user "Fix.State.bump ()");
         ]);
    Alcotest.test_case "silent under [@@@nldl.domain_safe]" `Quick
      (silent "R401"
         [
           ( "lib/fix/state.ml",
             "[@@@nldl.domain_safe \"fixture audit\"]\n" ^ state_ml );
           ("lib/fix/user.ml", par_user "Fix.State.bump ()");
         ]);
    Alcotest.test_case "binding-level allow suppresses" `Quick
      (silent "R401"
         [
           ( "lib/fix/state.ml",
             "let counter = ref 0\nlet[@nldl.allow \"R401\"] bump () = \
              counter := !counter + 1\n" );
           ("lib/fix/user.ml", par_user "Fix.State.bump ()");
         ]);
  ]

(* ------------------------------------------------------------------ *)
(* R402: unsafe-zone proof obligations.                                *)

let zone body = "[@@@nldl.unsafe_zone \"fixture\"]\n" ^ body

let r402 =
  [
    Alcotest.test_case "fires on unchecked index" `Quick
      (fires "R402"
         [ ("lib/fix/buf.ml", zone "let get a i = Array.unsafe_get a i\n") ]);
    Alcotest.test_case "silent when dominated by a for loop" `Quick
      (silent "R402"
         [
           ( "lib/fix/buf.ml",
             zone
               "let sum a =\n\
               \  let t = ref 0 in\n\
               \  for i = 0 to Array.length a - 1 do\n\
               \    t := !t + Array.unsafe_get a i\n\
               \  done;\n\
               \  !t\n" );
         ]);
    Alcotest.test_case "silent when dominated by a bounds guard" `Quick
      (silent "R402"
         [
           ( "lib/fix/buf.ml",
             zone
               "let get a i =\n\
               \  if i < 0 || i >= Array.length a then invalid_arg \"get\";\n\
               \  Array.unsafe_get a i\n" );
         ]);
    Alcotest.test_case "silent under valid bounds_validated" `Quick
      (silent "R402"
         [
           ( "lib/fix/buf.ml",
             zone
               "let check a i = i >= 0 && i < Array.length a\n\
                let[@nldl.bounds_validated \"check\"] get a i = \
                Array.unsafe_get a i\n" );
         ]);
    Alcotest.test_case "cross-module bounds_validated resolves" `Quick
      (silent "R402"
         [
           ("lib/fix/chk.ml", "let ensure a i = assert (i < Array.length a)\n");
           ( "lib/fix/buf.ml",
             zone
               "let[@nldl.bounds_validated \"Fix.Chk.ensure\"] get a i = \
                Array.unsafe_get a i\n" );
         ]);
    Alcotest.test_case "fires on stale bounds_validated" `Quick
      (fires "R402"
         [
           ( "lib/fix/buf.ml",
             zone
               "let[@nldl.bounds_validated \"Nowhere.check\"] get a i = \
                Array.unsafe_get a i\n" );
         ]);
    Alcotest.test_case "store value argument is not an index" `Quick
      (silent "R402"
         [
           ( "lib/fix/buf.ml",
             zone
               "let put a v =\n\
               \  for i = 0 to Array.length a - 1 do\n\
               \    Array.unsafe_set a i v\n\
               \  done\n" );
         ]);
    Alcotest.test_case "site-level allow suppresses" `Quick
      (silent "R402"
         [
           ( "lib/fix/buf.ml",
             zone
               "let[@nldl.allow \"R402\"] get a i = Array.unsafe_get a i\n" );
         ]);
  ]

(* ------------------------------------------------------------------ *)
(* R403: blocking calls in pool-escaping code.                         *)

let r403 =
  [
    Alcotest.test_case "fires on sleep inside closure" `Quick
      (fires "R403" [ ("lib/fix/user.ml", par_user "Unix.sleepf 0.1") ]);
    Alcotest.test_case "fires on blocking call in escaping callee" `Quick
      (fires "R403"
         [
           ("lib/fix/io.ml", "let fetch () = Unix.sleepf 0.1\n");
           ("lib/fix/user.ml", par_user "Fix.Io.fetch ()");
         ]);
    Alcotest.test_case "silent off the pool" `Quick
      (silent "R403"
         [ ("lib/fix/io.ml", "let fetch () = Unix.sleepf 0.1\n") ]);
    Alcotest.test_case "domain_safe audit covers Mutex.lock" `Quick
      (silent "R403"
         [
           ( "lib/fix/io.ml",
             "[@@@nldl.domain_safe \"fixture audit\"]\nlet m = Mutex.create \
              ()\nlet touch () = Mutex.lock m; Mutex.unlock m\n" );
           ("lib/fix/user.ml", par_user "Fix.Io.touch ()");
         ]);
    Alcotest.test_case "domain_safe audit does not cover syscalls" `Quick
      (fires "R403"
         [
           ( "lib/fix/io.ml",
             "[@@@nldl.domain_safe \"fixture audit\"]\nlet fetch () = \
              Unix.sleepf 0.1\n" );
           ("lib/fix/user.ml", par_user "Fix.Io.fetch ()");
         ]);
    Alcotest.test_case "binding-level allow suppresses" `Quick
      (silent "R403"
         [
           ( "lib/fix/io.ml",
             "let[@nldl.allow \"R403\"] fetch () = Unix.sleepf 0.1\n" );
           ("lib/fix/user.ml", par_user "Fix.Io.fetch ()");
         ]);
  ]

(* ------------------------------------------------------------------ *)
(* Driver robustness: degenerate inputs parse cleanly (no E000).       *)

let robustness =
  [
    Alcotest.test_case "empty file lints clean" `Quick (fun () ->
        Alcotest.(check (list string))
          "no findings" []
          (rules_of (Lint.Driver.lint_string ~file:"lib/fix/empty.ml" "")));
    Alcotest.test_case "UTF-8 BOM is stripped before parsing" `Quick (fun () ->
        Alcotest.(check bool) "no E000" false
          (has "E000"
             (Lint.Driver.lint_string ~file:"lib/fix/bom.ml"
                "\xef\xbb\xbflet x = 1\n")));
    Alcotest.test_case "CRLF endings parse" `Quick (fun () ->
        Alcotest.(check bool) "no E000" false
          (has "E000"
             (Lint.Driver.lint_string ~file:"lib/fix/crlf.ml"
                "let x = 1\r\nlet y = x + 1\r\n")));
    Alcotest.test_case "interface-only unit lints clean" `Quick (fun () ->
        Alcotest.(check bool) "no E000" false
          (has "E000"
             (Lint.Driver.lint_string ~file:"lib/fix/sig_only.mli"
                "val x : int\n")));
    Alcotest.test_case "parse error still reports E000" `Quick (fun () ->
        Alcotest.(check bool) "E000" true
          (has "E000"
             (Lint.Driver.lint_string ~file:"lib/fix/bad.ml" "let let let")));
  ]

(* ------------------------------------------------------------------ *)
(* Cache: digest-keyed phase-1 round-trip through the driver.          *)

let with_temp_dir f =
  let dir = Filename.temp_file "nldl_lint2" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      let rec rm p =
        if Sys.is_directory p then begin
          Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
          Unix.rmdir p
        end
        else Sys.remove p
      in
      rm dir)
    (fun () -> f dir)

let write path content =
  let oc = open_out path in
  output_string oc content;
  close_out oc

let cache =
  [
    Alcotest.test_case "second run hits for every file" `Quick (fun () ->
        with_temp_dir (fun dir ->
            let root = Filename.concat dir "tree" in
            Unix.mkdir root 0o755;
            Unix.mkdir (Filename.concat root "lib") 0o755;
            write (Filename.concat root "lib/a.ml") "let x = ref 0\n";
            write (Filename.concat root "lib/a.mli") "val x : int ref\n";
            write (Filename.concat root "lib/b.ml") "let y = 2\n";
            write (Filename.concat root "lib/b.mli") "val y : int\n";
            let cache_dir = Filename.concat dir "cache" in
            let r1 =
              Lint.Driver.run ~root ~roots:[ "lib" ] ~cache_dir ()
            in
            Alcotest.(check int) "all misses cold" r1.files r1.cache_misses;
            let r2 =
              Lint.Driver.run ~root ~roots:[ "lib" ] ~cache_dir ()
            in
            Alcotest.(check int) "all hits warm" r2.files r2.cache_hits;
            Alcotest.(check int) "no misses warm" 0 r2.cache_misses;
            Alcotest.(check (list string))
              "same findings"
              (List.map Lint.Finding.to_string r1.findings)
              (List.map Lint.Finding.to_string r2.findings)));
    Alcotest.test_case "edited file misses, others hit" `Quick (fun () ->
        with_temp_dir (fun dir ->
            let root = Filename.concat dir "tree" in
            Unix.mkdir root 0o755;
            Unix.mkdir (Filename.concat root "lib") 0o755;
            write (Filename.concat root "lib/a.ml") "let x = 1\n";
            write (Filename.concat root "lib/a.mli") "val x : int\n";
            write (Filename.concat root "lib/b.ml") "let y = 2\n";
            write (Filename.concat root "lib/b.mli") "val y : int\n";
            let cache_dir = Filename.concat dir "cache" in
            let _ = Lint.Driver.run ~root ~roots:[ "lib" ] ~cache_dir () in
            write (Filename.concat root "lib/a.ml") "let x = 3\n";
            let r =
              Lint.Driver.run ~root ~roots:[ "lib" ] ~cache_dir ()
            in
            Alcotest.(check int) "one miss" 1 r.cache_misses;
            Alcotest.(check int) "rest hit" (r.files - 1) r.cache_hits));
  ]

(* ------------------------------------------------------------------ *)
(* Real tree: graph sanity mirroring test_lint.ml's gate check.        *)

let rec find_repo_root dir =
  if
    Sys.file_exists (Filename.concat dir "dune-project")
    && Sys.file_exists (Filename.concat dir "lib")
  then Some dir
  else
    let parent = Filename.dirname dir in
    if parent = dir then None else find_repo_root parent

let real_tree =
  [
    Alcotest.test_case "graph covers the tree, no R40x findings" `Quick
      (fun () ->
        match find_repo_root (Sys.getcwd ()) with
        | None -> ()
        | Some root ->
            let r = Lint.Driver.run ~root ~roots:[ "lib"; "bin" ] () in
            Alcotest.(check bool) "nodes" true
              (Lint.Callgraph.node_count r.graph > 100);
            Alcotest.(check bool) "escape set is non-trivial" true
              (Lint.Escape.count r.escape > 0);
            Alcotest.(check bool) "roots found" true
              (Lint.Callgraph.roots r.graph <> []);
            Alcotest.(check (list string))
              "no fresh interprocedural findings" []
              (List.filter
                 (fun k ->
                   List.exists
                     (fun r -> String.length k >= 4 && String.sub k 0 4 = r)
                     [ "R401"; "R402"; "R403" ])
                 (List.map Lint.Finding.key r.fresh)));
  ]

let suites =
  [
    ("lint2.callgraph", callgraph);
    ("lint2.escape", escape);
    ("lint2.r401", r401);
    ("lint2.r402", r402);
    ("lint2.r403", r403);
    ("lint2.robustness", robustness);
    ("lint2.cache", cache);
    ("lint2.real_tree", real_tree);
  ]
