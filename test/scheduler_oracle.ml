(* Frozen copy of [Mapreduce.Scheduler] as it stood before the
   Event_heap/index-based rewrite (PR 7).  [Test_fault] replays the
   fault/speculation matrix through both implementations and demands
   field-by-field identical outcomes — byte-identical floats included.
   Only the module paths, the metric names and the log source differ
   from the original; do not "improve" this file. *)

module Star = Platform.Star
module Processor = Platform.Processor
module Task = Mapreduce.Task

let src = Logs.Src.create "nldl.test.scheduler_oracle" ~doc:"Pre-PR7 scheduler oracle"

module Log = (val Logs.src_log src : Logs.LOG)

type policy = Fifo | Affinity
type speculation = Off | At_idle | Late of { threshold : float }

type config = {
  policy : policy;
  speculation : speculation;
  retry : Fault.Retry.t;
  fetch_timeout : float;
}

let default_config =
  {
    policy = Fifo;
    speculation = Off;
    retry = { Fault.Retry.default with base_delay = 0.5; max_delay = 8. };
    fetch_timeout = 0.5;
  }

type assignment = {
  task : int;
  worker : int;
  start : float;
  fetch_end : float;
  finish : float;
  fetched : float;
}

type outcome = {
  assignments : assignment list;
  completion : float array;
  winner : int array;
  makespan : float;
  busy_until : float array;
  communication : float;
  per_worker_comm : float array;
  per_worker_tasks : int array;
  duplicates : int;
  retries : int;
  crashes_survived : int;
  attempts : int array;
  idle_workers : int;
  unfinished : int list;
  wasted_work : float;
  fault_log : Fault.Clock.event list;
}

module Pending = struct
  type t = { next : int array; prev : int array; mutable count : int }
  (* Virtual head at index n. *)

  let create n =
    let next = Array.init (n + 1) (fun i -> if i = n then 0 else i + 1) in
    let prev = Array.init (n + 1) (fun i -> if i = 0 then n else i - 1) in
    { next; prev; count = n }

  let head t = Array.length t.next - 1
  let is_empty t = t.count = 0
  let first t = t.next.(head t)
  let iter t f =
    let h = head t in
    let rec loop i = if i <> h then begin f i; loop t.next.(i) end in
    loop (first t)

  let fold t ~init f =
    let h = head t in
    let rec loop acc i = if i = h then acc else loop (f acc i) t.next.(i) in
    loop init (first t)

  let remove t i =
    t.next.(t.prev.(i)) <- t.next.(i);
    t.prev.(t.next.(i)) <- t.prev.(i);
    t.count <- t.count + (-1)

  let add t i =
    let h = head t in
    t.prev.(i) <- t.prev.(h);
    t.next.(i) <- h;
    t.next.(t.prev.(h)) <- i;
    t.prev.(h) <- i;
    t.count <- t.count + 1
end

let missing_volume cache ~block_size task =
  Array.fold_left
    (fun acc id -> if Hashtbl.mem cache id then acc else acc +. block_size id)
    0. task.Task.data_ids

let m_assignments = Obs.Metrics.counter "test.oracle.assignments"
let m_speculative = Obs.Metrics.counter "test.oracle.speculative_copies"

type copy = {
  c_task : int;
  c_start : float;
  c_fetch_end : float;
  c_finish : float;
  c_compute : float;
  c_volume : float;
}

type ev =
  | Free of int
  | Done of int
  | Crash_e of Fault.Plan.crash
  | Recover_e of int
  | Retry_t of int

type wstate = W_idle | W_busy | W_down

let run ?(config = default_config) ?jitter ?(faults = Fault.Plan.none) star ~tasks
    ~block_size =
  let compute_factor =
    match jitter with
    | None -> fun () -> 1.
    | Some (rng, sigma) ->
        if sigma < 0. then invalid_arg "Scheduler.run: jitter sigma must be >= 0";
        fun () -> Numerics.Distributions.lognormal rng ~mu:0. ~sigma
  in
  let p = Star.size star in
  if Fault.Plan.p faults > p then
    invalid_arg "Scheduler.run: fault plan addresses more workers than the platform has";
  let retry = config.retry in
  if retry.max_attempts < 1 then
    invalid_arg "Scheduler.run: retry.max_attempts must be >= 1";
  if config.fetch_timeout < 0. then
    invalid_arg "Scheduler.run: fetch_timeout must be >= 0";
  (match config.speculation with
  | Late { threshold } when threshold <= 0. || threshold > 1. ->
      invalid_arg "Scheduler.run: Late threshold must be in (0, 1]"
  | _ -> ());
  let clock = Fault.Clock.create faults in
  let workers = Star.workers star in
  let n_tasks = Array.length tasks in
  let pending = Pending.create n_tasks in
  let caches = Array.init p (fun _ -> Hashtbl.create 64) in
  let completion = Array.make n_tasks infinity in
  let winner = Array.make n_tasks (-1) in
  let attempts = Array.make n_tasks 0 in
  let live_copies = Array.make n_tasks 0 in
  let retry_pending = Array.make n_tasks false in
  let barred = Hashtbl.create 8 in
  let busy_until = Array.make p 0. in
  let per_worker_comm = Array.make p 0. in
  let per_worker_tasks = Array.make p 0 in
  let wstate = Array.make p W_idle in
  let running : copy option array = Array.make p None in
  let fetch_attempt_no = Array.make p 0 in
  let assignments = ref [] in
  let duplicates = ref 0 in
  let total_comm = ref 0. in
  let retries = ref 0 in
  let crashes = ref 0 in
  let wasted = ref 0. in
  let queue : ev Des.Event_queue.t = Des.Event_queue.create ~initial_capacity:p () in
  List.iter
    (fun (c : Fault.Plan.crash) ->
      Des.Event_queue.push queue ~priority:c.at (Crash_e c);
      match c.recovery with
      | Some r -> Des.Event_queue.push queue ~priority:r (Recover_e c.worker)
      | None -> ())
    (Fault.Plan.crashes faults);
  for w = 0 to p - 1 do
    Des.Event_queue.push queue ~priority:0. (Free w)
  done;
  let is_barred w i = Hashtbl.mem barred (w, i) in
  let enqueue_retry i now =
    if completion.(i) = infinity && live_copies.(i) = 0 && not retry_pending.(i)
    then begin
      retry_pending.(i) <- true;
      incr retries;
      let delay = Fault.Retry.delay retry ~attempt:(min attempts.(i) 30) in
      Fault.Clock.record clock
        (Task_retry { task = i; attempt = attempts.(i); time = now +. delay });
      Des.Event_queue.push queue ~priority:(now +. delay) (Retry_t i)
    end
  in
  let execute_copy w now i =
    attempts.(i) <- attempts.(i) + 1;
    live_copies.(i) <- live_copies.(i) + 1;
    wstate.(w) <- W_busy;
    let proc = workers.(w) in
    let volume = missing_volume caches.(w) ~block_size tasks.(i) in
    let transfer = Processor.transfer_time proc ~data:volume in
    let t_kill =
      match Fault.Plan.next_crash faults ~worker:w ~after:now with
      | Some c -> c.at
      | None -> infinity
    in
    let rec fetch t k =
      let a = fetch_attempt_no.(w) in
      fetch_attempt_no.(w) <- a + 1;
      if not (Fault.Plan.fetch_fails faults ~worker:w ~attempt:a) then `Fetched (t +. transfer)
      else begin
        let detected = t +. (config.fetch_timeout *. transfer) in
        if detected >= t_kill then `Doomed
        else begin
          Fault.Clock.record clock
            (Fetch_failure { worker = w; task = i; attempt = k; time = detected });
          incr retries;
          if k >= retry.max_attempts then `Exhausted detected
          else fetch (detected +. Fault.Retry.delay retry ~attempt:k) (k + 1)
        end
      end
    in
    let fetch_result = if volume <= 0. then `Fetched now else fetch now 1 in
    let doom () =
      running.(w) <-
        Some
          {
            c_task = i;
            c_start = now;
            c_fetch_end = infinity;
            c_finish = infinity;
            c_compute = 0.;
            c_volume = volume;
          }
    in
    match fetch_result with
    | `Doomed -> doom ()
    | `Exhausted t_ex ->
        live_copies.(i) <- live_copies.(i) - 1;
        Hashtbl.replace barred (w, i) ();
        Fault.Clock.record clock (Quarantine { worker = w; task = i; time = t_ex });
        busy_until.(w) <- Float.max busy_until.(w) t_ex;
        enqueue_retry i t_ex;
        running.(w) <- None;
        Des.Event_queue.push queue ~priority:t_ex (Free w)
    | `Fetched t_f ->
        if t_f >= t_kill then doom ()
        else begin
          Array.iter (fun id -> Hashtbl.replace caches.(w) id ()) tasks.(i).Task.data_ids;
          per_worker_comm.(w) <- per_worker_comm.(w) +. volume;
          total_comm := !total_comm +. volume;
          let d_c = compute_factor () *. Processor.compute_time proc ~work:tasks.(i).Task.cost in
          let finish = Fault.Plan.advance faults ~worker:w ~start:t_f ~duration:d_c in
          running.(w) <-
            Some
              {
                c_task = i;
                c_start = now;
                c_fetch_end = t_f;
                c_finish = finish;
                c_compute = d_c;
                c_volume = volume;
              };
          Obs.Metrics.incr_counter m_assignments;
          Log.debug (fun m ->
              m "t=%.4g: task %d -> worker %d (fetch %.4g, finish %.4g)" now i w volume
                finish);
          if finish < t_kill then Des.Event_queue.push queue ~priority:finish (Done w)
        end
  in
  let select_task w =
    match config.policy with
    | Fifo ->
        let found = ref (-1) in
        (try
           Pending.iter pending (fun i ->
               if not (is_barred w i) then begin
                 found := i;
                 raise Exit
               end)
         with Exit -> ());
        !found
    | Affinity ->
        Pending.fold pending ~init:(-1, infinity) (fun (best, best_volume) i ->
            if is_barred w i then (best, best_volume)
            else
              let volume = missing_volume caches.(w) ~block_size tasks.(i) in
              if volume < best_volume then (i, volume) else (best, best_volume))
        |> fst
  in
  let nominal_eta w now i =
    let proc = workers.(w) in
    let volume = missing_volume caches.(w) ~block_size tasks.(i) in
    now
    +. Processor.transfer_time proc ~data:volume
    +. Processor.compute_time proc ~work:tasks.(i).Task.cost
  in
  let launch_speculative w now i =
    incr duplicates;
    Obs.Metrics.incr_counter m_speculative;
    Log.info (fun m -> m "t=%.4g: worker %d speculates on task %d" now w i);
    execute_copy w now i
  in
  let eligible_target w (c : copy) =
    completion.(c.c_task) = infinity && live_copies.(c.c_task) < 2
    && not (is_barred w c.c_task)
  in
  let speculate_at_idle w now =
    let target = ref (-1) and latest = ref now in
    for w' = 0 to p - 1 do
      match running.(w') with
      | Some c when c.c_finish > !latest && eligible_target w c ->
          latest := c.c_finish;
          target := c.c_task
      | _ -> ()
    done;
    if !target >= 0 && nominal_eta w now !target < !latest then
      launch_speculative w now !target
  in
  let speculate_late w now ~threshold =
    let n_running = ref 0 and rate_sum = ref 0. in
    let rates = Array.make p (0., infinity) in
    for w' = 0 to p - 1 do
      match running.(w') with
      | Some c ->
          let elapsed = now -. c.c_start in
          let progress =
            if now <= c.c_fetch_end || c.c_compute <= 0. then 0.
            else
              Float.min 1.
                (Fault.Plan.work_between faults ~worker:w' ~start:c.c_fetch_end
                   ~until:now
                /. c.c_compute)
          in
          let rate = if elapsed <= 0. then 0. else progress /. elapsed in
          let estimate =
            if progress <= 0. then infinity else c.c_start +. (elapsed /. progress)
          in
          rates.(w') <- (rate, estimate);
          incr n_running;
          rate_sum := !rate_sum +. rate
      | None -> ()
    done;
    if !n_running > 0 then begin
      let mean_rate = !rate_sum /. float_of_int !n_running in
      let target = ref (-1) and latest = ref now in
      for w' = 0 to p - 1 do
        match running.(w') with
        | Some c when eligible_target w c ->
            let rate, estimate = rates.(w') in
            if estimate > !latest && rate < (threshold *. mean_rate) then begin
              latest := estimate;
              target := c.c_task
            end
        | _ -> ()
      done;
      if !target >= 0 && nominal_eta w now !target < !latest then
        launch_speculative w now !target
    end
  in
  let dispatch w now =
    if wstate.(w) = W_idle then begin
      let assigned =
        if Pending.is_empty pending then false
        else
          match select_task w with
          | -1 -> false
          | i ->
              Pending.remove pending i;
              execute_copy w now i;
              true
      in
      if not assigned then
        match config.speculation with
        | Off -> ()
        | At_idle -> speculate_at_idle w now
        | Late { threshold } -> speculate_late w now ~threshold
    end
  in
  let handle now = function
    | Free w -> (
        match wstate.(w) with
        | W_idle -> dispatch w now
        | W_busy when running.(w) = None ->
            wstate.(w) <- W_idle;
            dispatch w now
        | _ -> ())
    | Done w -> (
        match running.(w) with
        | Some c when c.c_finish = now ->
            running.(w) <- None;
            wstate.(w) <- W_idle;
            let i = c.c_task in
            live_copies.(i) <- live_copies.(i) - 1;
            per_worker_tasks.(w) <- per_worker_tasks.(w) + 1;
            busy_until.(w) <- Float.max busy_until.(w) now;
            assignments :=
              {
                task = i;
                worker = w;
                start = c.c_start;
                fetch_end = c.c_fetch_end;
                finish = now;
                fetched = c.c_volume;
              }
              :: !assignments;
            if completion.(i) = infinity then begin
              completion.(i) <- now;
              winner.(i) <- w
            end
            else wasted := !wasted +. tasks.(i).Task.cost;
            dispatch w now
        | _ -> ())
    | Crash_e c ->
        let w = c.worker in
        if wstate.(w) <> W_down then begin
          incr crashes;
          Fault.Clock.record clock (Crash { worker = w; time = now });
          (match running.(w) with
          | Some cp ->
              let i = cp.c_task in
              live_copies.(i) <- live_copies.(i) - 1;
              (if cp.c_fetch_end < now && cp.c_compute > 0. then begin
                 let done_ =
                   Fault.Plan.work_between faults ~worker:w ~start:cp.c_fetch_end
                     ~until:now
                 in
                 wasted :=
                   !wasted +. (Float.min 1. (done_ /. cp.c_compute) *. tasks.(i).Task.cost)
               end);
              busy_until.(w) <- Float.max busy_until.(w) now;
              enqueue_retry i now
          | None -> ());
          running.(w) <- None;
          wstate.(w) <- W_down;
          Hashtbl.reset caches.(w)
        end
    | Recover_e w ->
        if wstate.(w) = W_down then begin
          Fault.Clock.record clock (Recover { worker = w; time = now });
          wstate.(w) <- W_idle;
          dispatch w now
        end
    | Retry_t i ->
        retry_pending.(i) <- false;
        if completion.(i) = infinity && live_copies.(i) = 0 then begin
          Pending.add pending i;
          let w = ref 0 in
          while !w < p && not (Pending.is_empty pending) do
            if wstate.(!w) = W_idle then dispatch !w now;
            incr w
          done
        end
  in
  let rec drain () =
    match Des.Event_queue.pop queue with
    | None -> ()
    | Some (now, ev) ->
        handle now ev;
        drain ()
  in
  drain ();
  let makespan =
    Array.fold_left
      (fun acc c -> if Float.is_finite c then Float.max acc c else acc)
      0. completion
  in
  let unfinished =
    let acc = ref [] in
    for i = n_tasks - 1 downto 0 do
      if completion.(i) = infinity then acc := i :: !acc
    done;
    !acc
  in
  let idle_workers =
    Array.fold_left (fun acc n -> if n = 0 then acc + 1 else acc) 0 per_worker_tasks
  in
  {
    assignments = List.rev !assignments;
    completion;
    winner;
    makespan;
    busy_until;
    communication = !total_comm;
    per_worker_comm;
    per_worker_tasks;
    duplicates = !duplicates;
    retries = !retries;
    crashes_survived = !crashes;
    attempts;
    idle_workers;
    unfinished;
    wasted_work = !wasted;
    fault_log = Fault.Clock.events clock;
  }
