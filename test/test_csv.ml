(* Csv_out: RFC-4180 quoting audit.  The writer and the new parser must
   be exact inverses for arbitrary field contents — commas, quotes,
   embedded newlines, CR, empty fields. *)

let field_gen =
  (* Bias towards the characters that exercise the quoting rules. *)
  QCheck.Gen.(
    string_size ~gen:(oneofl [ 'a'; 'b'; ','; '"'; '\n'; '\r'; ' '; 'x' ]) (0 -- 8))

let table_gen =
  QCheck.Gen.(
    1 -- 4 >>= fun width ->
    let row = list_repeat width field_gen in
    pair row (list_size (0 -- 5) row))

let table_arb =
  QCheck.make table_gen ~print:(fun (header, rows) ->
      String.concat " | " (List.map (String.concat ",") (header :: rows)))

let qcheck_roundtrip =
  QCheck.Test.make ~count:500 ~name:"parse inverts to_string" table_arb
    (fun (header, rows) ->
      match Experiments.Csv_out.parse (Experiments.Csv_out.to_string ~header ~rows) with
      | Ok parsed -> parsed = header :: rows
      | Error _ -> false)

let test_known_tricky_fields () =
  let header = [ "a,b"; "he said \"hi\""; "line\nbreak" ] in
  let rows = [ [ ""; ","; "\"\"" ]; [ "\r\n"; "plain"; "trailing\n" ] ] in
  let s = Experiments.Csv_out.to_string ~header ~rows in
  Alcotest.(check bool) "round-trips" true
    (Experiments.Csv_out.parse s = Ok (header :: rows))

let test_parse_rejects_garbage () =
  (match Experiments.Csv_out.parse "\"unterminated" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unterminated quote accepted");
  match Experiments.Csv_out.parse "ab\"cd\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "stray quote accepted"

let test_parse_bare_csv () =
  (* Hand-written CSV without a trailing newline still parses. *)
  Alcotest.(check bool) "bare" true
    (Experiments.Csv_out.parse "a,b\n1,2\r\n3,4"
    = Ok [ [ "a"; "b" ]; [ "1"; "2" ]; [ "3"; "4" ] ])

let suites =
  [
    ( "csv",
      [
        QCheck_alcotest.to_alcotest qcheck_roundtrip;
        Alcotest.test_case "tricky fields" `Quick test_known_tricky_fields;
        Alcotest.test_case "garbage rejected" `Quick test_parse_rejects_garbage;
        Alcotest.test_case "bare csv" `Quick test_parse_bare_csv;
      ] );
  ]
