(* The typed query plane: codec strictness, fingerprint normalization
   and solver dispatch.  The byte-identity of the three surfaces that
   share [Api.Eval.eval] is asserted end-to-end in Test_serve; here we
   pin the request/response codecs and the cache-key algebra they rely
   on. *)

let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

let req ?bandwidth ?latency ?workload ?comm_model ?total ~platform ~kind () =
  match Api.Request.make ?bandwidth ?latency ?workload ?comm_model ?total ~platform ~kind () with
  | Ok r -> r
  | Error msg -> Alcotest.failf "request rejected: %s" msg

let speeds a = Api.Request.Speeds a

(* ------------------------------------------------------------------ *)
(* Request codec: round-trip and strictness.                           *)

let test_request_roundtrip () =
  let r =
    req ~bandwidth:2. ~latency:0.25 ~workload:(Dlt.Cost_model.Power 1.5)
      ~comm_model:Dlt.Schedule.One_port ~total:42.
      ~platform:(speeds [| 3.; 1.; 2. |]) ~kind:Api.Request.Ratio ()
  in
  match Api.Request.of_json (Api.Request.to_json r) with
  | Error msg -> Alcotest.failf "round-trip rejected: %s" msg
  | Ok r' ->
      checks "same canonical encoding"
        (Obs.Json.to_compact (Api.Request.to_json r))
        (Obs.Json.to_compact (Api.Request.to_json r'))

let test_multi_load_roundtrip () =
  let r =
    req ~platform:(Api.Request.Profile { name = "uniform"; p = 5; seed = 7 })
      ~kind:(Api.Request.Multi_load [| 0.5; 1.5 |]) ()
  in
  match Api.Request.of_json (Api.Request.to_json r) with
  | Error msg -> Alcotest.failf "round-trip rejected: %s" msg
  | Ok r' ->
      checks "same fingerprint" (Api.Fingerprint.of_request r)
        (Api.Fingerprint.of_request r')

let expect_reject what line =
  match Api.Request.of_line line with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "%s was accepted" what

let test_reject_unknown_field () =
  expect_reject "unknown field"
    {|{"kind":"ratio","platform":{"speeds":[1,2]},"frobnicate":3}|};
  expect_reject "unknown platform field"
    {|{"kind":"ratio","platform":{"speeds":[1,2],"gpus":1}}|}

let test_reject_nan_speed () =
  (* Obs.Json has no NaN literal, so a NaN can only arrive through a
     profile-free speeds vector with a malformed number — but validate
     must also catch a NaN built programmatically. *)
  (match Api.Request.make ~platform:(speeds [| 1.; Float.nan |]) ~kind:Api.Request.Plan () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "NaN speed accepted");
  expect_reject "negative speed" {|{"kind":"plan","platform":{"speeds":[1,-2]}}|}

let test_reject_bad_shapes () =
  expect_reject "empty speeds" {|{"kind":"schedule","platform":{"speeds":[]}}|};
  expect_reject "zero total" {|{"kind":"ratio","platform":{"speeds":[1,2]},"total":0}|};
  expect_reject "negative latency"
    {|{"kind":"ratio","platform":{"speeds":[1]},"latency":-1}|};
  expect_reject "unknown profile"
    {|{"kind":"ratio","platform":{"profile":"warp","p":4}}|};
  expect_reject "wrong schema_version"
    {|{"schema_version":99,"kind":"ratio","platform":{"speeds":[1,2]}}|};
  expect_reject "bad workload"
    {|{"kind":"ratio","platform":{"speeds":[1]},"workload":"cubic?"}|}

(* ------------------------------------------------------------------ *)
(* Response codec.                                                     *)

let test_response_roundtrip () =
  let open Api.Response in
  let bodies =
    [
      Ratio { makespan = 1.5; ideal = 1.; ratio = 1.5; done_fraction = 0.75 };
      Plan { makespan = 2.; allocation = [| 1.; 3. |]; fractions = [| 0.25; 0.75 |] };
      Multi_load
        { throughput = 4.; rates = [| 1.; 3. |]; admitted = [| 0.5 |]; utilization = 0.125 };
      Error { code = "deadline"; message = "too slow" };
    ]
  in
  List.iter
    (fun body ->
      let t = { body; provenance = { solver = "dlt.linear"; cache = Uncached } } in
      match of_json (Obs.Json.of_string (to_line t) |> Result.get_ok) with
      | Error msg -> Alcotest.failf "response round-trip rejected: %s" msg
      | Ok t' -> checks "same line" (to_line t) (to_line t'))
    bodies

let test_cache_status_not_serialized () =
  (* The canonical rendering must not leak hit/miss — that is the whole
     byte-identity design. *)
  let open Api.Response in
  let body = Ratio { makespan = 1.; ideal = 1.; ratio = 1.; done_fraction = 1. } in
  let line cache = to_line { body; provenance = { solver = "s"; cache } } in
  checks "hit = miss" (line Hit) (line Miss);
  checks "miss = uncached" (line Miss) (line Uncached)

(* ------------------------------------------------------------------ *)
(* Fingerprints.                                                       *)

let test_fingerprint_permutation () =
  let k a = Api.Fingerprint.of_request (req ~platform:(speeds a) ~kind:Api.Request.Ratio ()) in
  checks "permuted speeds share a key" (k [| 1.; 2.; 3. |]) (k [| 3.; 1.; 2. |]);
  checkb "different speeds differ" false (k [| 1.; 2.; 3. |] = k [| 1.; 2.; 4. |])

let test_fingerprint_profile_equals_draw () =
  let pr = req ~platform:(Api.Request.Profile { name = "uniform"; p = 6; seed = 42 })
      ~kind:Api.Request.Plan () in
  let drawn = Platform.Star.speeds (Api.Request.star pr) in
  let ex = req ~platform:(speeds drawn) ~kind:Api.Request.Plan () in
  checks "profile and its drawn speeds share a key"
    (Api.Fingerprint.of_request pr) (Api.Fingerprint.of_request ex)

let test_fingerprint_kind_sensitivity () =
  let k kind = Api.Fingerprint.of_request (req ~platform:(speeds [| 1.; 2. |]) ~kind ()) in
  checkb "ratio <> plan" false (k Api.Request.Ratio = k Api.Request.Plan);
  checkb "ratio <> schedule" false (k Api.Request.Ratio = k Api.Request.Schedule)

let test_quantize_boundaries () =
  (* Shortest round-trippable rendering: distinct doubles never merge,
     and parsing the rendering returns the exact double. *)
  let q = Api.Fingerprint.quantize in
  checkb "0.1+0.2 <> 0.3" false (q (0.1 +. 0.2) = q 0.3);
  checks "1.0 renders short" "1" (q 1.);
  List.iter
    (fun f -> Alcotest.(check (float 0.)) "parse round-trip" f (float_of_string (q f)))
    [ 0.1; 0.1 +. 0.2; 1e-300; 1.7976931348623157e308; 4.9e-324; 1. /. 3. ]

let qcheck_no_collision =
  (* Grid-valued speed vectors under varying cost models: two requests
     get the same key iff the sorted vectors AND the workloads are
     equal. *)
  let workload_of = function
    | 0 -> Dlt.Cost_model.Linear
    | 1 -> Dlt.Cost_model.N_log_n
    | a -> Dlt.Cost_model.Power (float_of_int a)
  in
  let gen = QCheck.(pair (list_of_size Gen.(1 -- 6) (int_range 1 9)) (int_range 0 4)) in
  QCheck.Test.make ~count:300 ~name:"fingerprint collision-free on grids"
    (QCheck.pair gen gen)
    (fun ((sa, wa), (sb, wb)) ->
      let vec l = Array.of_list (List.map float_of_int l) in
      let key (l, w) =
        Api.Fingerprint.of_request
          (req ~workload:(workload_of w) ~platform:(speeds (vec l)) ~kind:Api.Request.Ratio ())
      in
      let canon (l, w) = (List.sort compare l, workload_of w) in
      (key (sa, wa) = key (sb, wb)) = (canon (sa, wa) = canon (sb, wb)))

let qcheck_quantize_roundtrip =
  QCheck.Test.make ~count:500 ~name:"quantize parses back exactly"
    QCheck.(float_bound_exclusive 1e6)
    (fun f ->
      let f = Float.abs f +. 1e-9 in
      float_of_string (Api.Fingerprint.quantize f) = f)

(* ------------------------------------------------------------------ *)
(* Evaluation sanity.                                                  *)

let body_of r = (Api.Eval.eval r).Api.Response.body

let test_eval_ratio_linear () =
  let r = req ~platform:(speeds [| 1.; 2.; 3. |]) ~total:6. ~kind:Api.Request.Ratio () in
  checks "solver" "dlt.linear" (Api.Eval.solver_name r);
  match body_of r with
  | Api.Response.Ratio b ->
      checkb "ratio >= 1" true (b.ratio >= 1. -. 1e-9);
      checkb "done fraction in (0,1]" true (b.done_fraction > 0. && b.done_fraction <= 1. +. 1e-9)
  | _ -> Alcotest.fail "expected Ratio body"

let test_eval_plan_nonlinear () =
  let r =
    req ~workload:(Dlt.Cost_model.Power 2.) ~platform:(speeds [| 1.; 2.; 4. |])
      ~total:10. ~kind:Api.Request.Plan ()
  in
  checks "solver" "dlt.nonlinear.bisection" (Api.Eval.solver_name r);
  match body_of r with
  | Api.Response.Plan b ->
      let sum = Array.fold_left ( +. ) 0. b.allocation in
      Alcotest.(check (float 1e-6)) "allocation covers the load" 10. sum;
      let fsum = Array.fold_left ( +. ) 0. b.fractions in
      Alcotest.(check (float 1e-9)) "fractions sum to 1" 1. fsum
  | _ -> Alcotest.fail "expected Plan body"

let test_eval_schedule_workers () =
  let r = req ~platform:(speeds [| 1.; 2. |]) ~total:3. ~kind:Api.Request.Schedule () in
  match body_of r with
  | Api.Response.Schedule b ->
      Alcotest.(check int) "one row per worker" 2 (Array.length b.workers);
      Array.iter
        (fun (w : Api.Response.worker_row) ->
          checkb "compute ends by makespan" true (w.compute_end <= b.makespan +. 1e-9))
        b.workers
  | _ -> Alcotest.fail "expected Schedule body"

let test_eval_multi_load_admission () =
  (* Demands beyond steady-state capacity are clipped, in order. *)
  let r =
    req ~platform:(speeds [| 3.; 3.; 1. |])
      ~kind:(Api.Request.Multi_load [| 1.; 1e9 |]) ()
  in
  checks "solver" "dlt.steady_state" (Api.Eval.solver_name r);
  match body_of r with
  | Api.Response.Multi_load b ->
      checkb "throughput positive" true (b.throughput > 0.);
      Alcotest.(check (float 1e-9)) "first load fully admitted" 1. b.admitted.(0);
      let used = Array.fold_left ( +. ) 0. b.admitted in
      checkb "admission within capacity" true (used <= b.throughput +. 1e-9);
      Alcotest.(check (float 1e-9)) "saturated" 1. b.utilization
  | _ -> Alcotest.fail "expected Multi_load body"

let test_eval_invalid_request () =
  let bad = { (req ~platform:(speeds [| 1. |]) ~kind:Api.Request.Ratio ()) with
              Api.Request.total = -1. } in
  match Api.Eval.eval bad with
  | { Api.Response.body = Api.Response.Error e; provenance } ->
      checks "code" "invalid_request" e.code;
      checks "solver" "api.validate" provenance.Api.Response.solver
  | _ -> Alcotest.fail "expected Error body"

let test_eval_line_bad_json () =
  match Api.Eval.eval_line "{not json" with
  | { Api.Response.body = Api.Response.Error e; _ } -> checks "code" "bad_request" e.code
  | _ -> Alcotest.fail "expected Error body"

let suites =
  [
    ( "api.codec",
      [
        Alcotest.test_case "request round-trip" `Quick test_request_roundtrip;
        Alcotest.test_case "multi-load round-trip" `Quick test_multi_load_roundtrip;
        Alcotest.test_case "unknown field rejected" `Quick test_reject_unknown_field;
        Alcotest.test_case "NaN/negative speed rejected" `Quick test_reject_nan_speed;
        Alcotest.test_case "malformed shapes rejected" `Quick test_reject_bad_shapes;
        Alcotest.test_case "response round-trip" `Quick test_response_roundtrip;
        Alcotest.test_case "cache status not serialized" `Quick
          test_cache_status_not_serialized;
      ] );
    ( "api.fingerprint",
      [
        Alcotest.test_case "permutation invariance" `Quick test_fingerprint_permutation;
        Alcotest.test_case "profile equals its draw" `Quick
          test_fingerprint_profile_equals_draw;
        Alcotest.test_case "kind sensitivity" `Quick test_fingerprint_kind_sensitivity;
        Alcotest.test_case "quantize boundaries" `Quick test_quantize_boundaries;
        QCheck_alcotest.to_alcotest qcheck_no_collision;
        QCheck_alcotest.to_alcotest qcheck_quantize_roundtrip;
      ] );
    ( "api.eval",
      [
        Alcotest.test_case "ratio linear" `Quick test_eval_ratio_linear;
        Alcotest.test_case "plan nonlinear" `Quick test_eval_plan_nonlinear;
        Alcotest.test_case "schedule workers" `Quick test_eval_schedule_workers;
        Alcotest.test_case "multi-load admission" `Quick test_eval_multi_load_admission;
        Alcotest.test_case "invalid request" `Quick test_eval_invalid_request;
        Alcotest.test_case "bad wire line" `Quick test_eval_line_bad_json;
      ] );
  ]
