(* The scatter/partition kernel layer (lib/kernels): permutation and
   splitter-boundary invariants, byte-identity with the historical
   list-based partition, 1-vs-N pool-domain identity (domains forced >= 2
   — CI/dev hosts may report a single core), segment sorting, and the
   O(p)-auxiliary-allocation contract via Gc counters. *)

module Scatter = Kernels.Scatter
module Seg_sort = Kernels.Seg_sort
module Sample_sort = Sortlib.Sample_sort
module Rng = Numerics.Rng

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let is_sorted cmp a =
  let ok = ref true in
  for i = 0 to Array.length a - 2 do
    if cmp a.(i) a.(i + 1) > 0 then ok := false
  done;
  !ok

let multiset_equal a b =
  let a = Array.copy a and b = Array.copy b in
  Array.sort compare a;
  Array.sort compare b;
  a = b

(* The pre-kernel implementation of [Sample_sort.partition]: a cons cell
   per key, [List.rev] per bucket — kept here as the byte-identity
   reference (the kernel's stable scatter must reproduce it exactly). *)
let list_based_partition ~cmp keys ~splitters =
  let p = Array.length splitters + 1 in
  let cells = Array.make p [] in
  Array.iter
    (fun key ->
      let b = Scatter.bucket_index ~cmp splitters key in
      cells.(b) <- key :: cells.(b))
    keys;
  Array.map (fun cell -> Array.of_list (List.rev cell)) cells

let float_keys ~seed n =
  let rng = Rng.create ~seed () in
  Array.init n (fun _ -> Rng.float rng)

let float_splitters ~seed keys ~p =
  Sample_sort.choose_splitters ~cmp:Float.compare (Rng.create ~seed ()) keys ~p ~s:32

(* --- partition invariants ---------------------------------------------- *)

let test_partition_permutation () =
  let keys = float_keys ~seed:1 5_000 in
  let splitters = float_splitters ~seed:2 keys ~p:8 in
  let flat = Scatter.partition_floats keys ~splitters in
  checkb "data is a permutation of the input" true (multiset_equal keys flat.Scatter.data);
  checki "offsets span" (Array.length keys) flat.Scatter.offsets.(Scatter.num_buckets flat);
  checki "num buckets" 8 (Scatter.num_buckets flat);
  let monotone = ref true in
  for b = 0 to Scatter.num_buckets flat - 1 do
    if flat.Scatter.offsets.(b) > flat.Scatter.offsets.(b + 1) then monotone := false
  done;
  checkb "offsets monotone" true !monotone

let test_partition_respects_splitters () =
  let keys = float_keys ~seed:3 5_000 in
  let splitters = float_splitters ~seed:4 keys ~p:8 in
  let flat = Scatter.partition_floats keys ~splitters in
  for b = 0 to Scatter.num_buckets flat - 1 do
    let lo = Scatter.bucket_lo flat b and len = Scatter.bucket_len flat b in
    for i = lo to lo + len - 1 do
      let key = flat.Scatter.data.(i) in
      if b > 0 then checkb "above previous splitter" true (key >= splitters.(b - 1));
      if b < Array.length splitters then checkb "below own splitter" true (key < splitters.(b))
    done
  done

let test_partition_matches_list_based () =
  let keys = float_keys ~seed:5 10_000 in
  let splitters = float_splitters ~seed:6 keys ~p:16 in
  let reference = list_based_partition ~cmp:Float.compare keys ~splitters in
  let flat = Scatter.partition_floats keys ~splitters in
  Alcotest.(check (array (float 0.)))
    "flat data = reference concat"
    (Array.concat (Array.to_list reference))
    flat.Scatter.data;
  Array.iteri
    (fun b bucket ->
      Alcotest.(check (array (float 0.)))
        (Printf.sprintf "bucket %d" b)
        bucket (Scatter.bucket flat b))
    reference;
  (* The generic kernel and the [Sample_sort.partition] compatibility
     wrapper reproduce the same bytes. *)
  let generic = Scatter.partition ~cmp:Float.compare keys ~splitters in
  Alcotest.(check (array (float 0.))) "generic = float kernel" flat.Scatter.data
    generic.Scatter.data;
  let compat = Sample_sort.partition ~cmp:Float.compare keys ~splitters in
  Array.iteri
    (fun b bucket ->
      Alcotest.(check (array (float 0.)))
        (Printf.sprintf "compat bucket %d" b)
        bucket compat.Sample_sort.contents.(b))
    reference

let test_partition_generic_ints () =
  let rng = Rng.create ~seed:7 () in
  let keys = Array.init 4_000 (fun _ -> Rng.int rng 1_000) in
  let splitters = [| 100; 250; 500; 900 |] in
  let reference = list_based_partition ~cmp:Int.compare keys ~splitters in
  let flat = Scatter.partition ~cmp:Int.compare keys ~splitters in
  Alcotest.(check (array int))
    "generic int data = reference concat"
    (Array.concat (Array.to_list reference))
    flat.Scatter.data;
  Alcotest.(check (array int)) "bucket sizes" (Array.map Array.length reference)
    (Scatter.bucket_sizes flat)

let test_partition_empty_and_degenerate () =
  let flat = Scatter.partition_floats [||] ~splitters:[| 0.5 |] in
  checki "empty data" 0 (Array.length flat.Scatter.data);
  Alcotest.(check (array int)) "empty offsets" [| 0; 0; 0 |] flat.Scatter.offsets;
  (* No splitters: everything lands in the single bucket, input order. *)
  let keys = [| 3.; 1.; 2. |] in
  let one = Scatter.partition_floats keys ~splitters:[||] in
  Alcotest.(check (array (float 0.))) "single bucket keeps order" keys one.Scatter.data

let test_histogram_matches_partition () =
  let keys = float_keys ~seed:8 20_000 in
  let splitters = float_splitters ~seed:9 keys ~p:12 in
  let flat = Scatter.partition_floats keys ~splitters in
  Alcotest.(check (array int)) "float histogram = bucket sizes" (Scatter.bucket_sizes flat)
    (Scatter.histogram_floats keys ~splitters);
  Alcotest.(check (array int)) "generic histogram agrees" (Scatter.bucket_sizes flat)
    (Scatter.histogram ~cmp:Float.compare keys ~splitters)

let test_bucket_index_floats_agrees () =
  let keys = float_keys ~seed:10 2_000 in
  let splitters = float_splitters ~seed:11 keys ~p:9 in
  Array.iter
    (fun key ->
      checki "monomorphic = generic bucket index"
        (Scatter.bucket_index ~cmp:Float.compare splitters key)
        (Scatter.bucket_index_floats splitters key))
    keys

(* --- pool-parallel identity -------------------------------------------- *)

let test_pool_partition_identical_any_domains () =
  (* Large enough that the pool variant really slices (n >= 16384), and
     domains forced >= 2: the host may report a single core, and a
     1-domain pool would degrade to the sequential path we are trying to
     compare against. *)
  let keys = float_keys ~seed:12 60_000 in
  let splitters = float_splitters ~seed:13 keys ~p:16 in
  let sequential = Scatter.partition_floats keys ~splitters in
  List.iter
    (fun domains ->
      let pool = Exec.Pool.create ~domains () in
      let parallel = Scatter.partition_floats_pool pool keys ~splitters in
      Exec.Pool.teardown pool;
      Alcotest.(check (array (float 0.)))
        (Printf.sprintf "float data identical at %d domains" domains)
        sequential.Scatter.data parallel.Scatter.data;
      Alcotest.(check (array int))
        (Printf.sprintf "offsets identical at %d domains" domains)
        sequential.Scatter.offsets parallel.Scatter.offsets)
    [ 1; 2; 3 ]

let test_pool_partition_generic_identical () =
  let rng = Rng.create ~seed:14 () in
  let keys = Array.init 40_000 (fun _ -> Rng.int rng 10_000) in
  let splitters = [| 1_000; 3_000; 7_500 |] in
  let sequential = Scatter.partition ~cmp:Int.compare keys ~splitters in
  let pool = Exec.Pool.create ~domains:3 () in
  let parallel = Scatter.partition_pool ~cmp:Int.compare pool keys ~splitters in
  Exec.Pool.teardown pool;
  Alcotest.(check (array int)) "generic pool data identical" sequential.Scatter.data
    parallel.Scatter.data;
  Alcotest.(check (array int)) "generic pool offsets identical" sequential.Scatter.offsets
    parallel.Scatter.offsets

let test_multicore_sort_identical_forced_domains () =
  let keys = float_keys ~seed:15 50_000 in
  let reference = Array.copy keys in
  Array.sort Float.compare reference;
  List.iter
    (fun domains ->
      let out = Sortlib.Multicore.sort ~domains (Rng.create ~seed:16 ()) keys ~p:8 in
      Alcotest.(check (array (float 0.)))
        (Printf.sprintf "multicore sort at %d domains" domains)
        reference out)
    [ 1; 2; 3 ]

(* --- segment sort ------------------------------------------------------ *)

let test_seg_sort_floats () =
  let keys = float_keys ~seed:17 2_000 in
  let data = Array.copy keys in
  let lo = 137 and len = 1_200 in
  Seg_sort.sort_floats data ~lo ~len;
  let expected =
    let seg = Array.sub keys lo len in
    Array.sort Float.compare seg;
    seg
  in
  Alcotest.(check (array (float 0.))) "segment sorted" expected (Array.sub data lo len);
  Alcotest.(check (array (float 0.))) "prefix untouched" (Array.sub keys 0 lo)
    (Array.sub data 0 lo);
  Alcotest.(check (array (float 0.)))
    "suffix untouched"
    (Array.sub keys (lo + len) (Array.length keys - lo - len))
    (Array.sub data (lo + len) (Array.length data - lo - len))

let test_seg_sort_adversarial () =
  List.iter
    (fun (name, data) ->
      let expected = Array.copy data in
      Array.sort Float.compare expected;
      Seg_sort.sort_floats data ~lo:0 ~len:(Array.length data);
      Alcotest.(check (array (float 0.))) name expected data)
    [
      ("all equal", Array.make 5_000 1.);
      ("already sorted", Array.init 5_000 float_of_int);
      ("reverse sorted", Array.init 5_000 (fun i -> float_of_int (5_000 - i)));
      ("two values", Array.init 5_000 (fun i -> float_of_int (i mod 2)));
      ("empty", [||]);
      ("singleton", [| 42. |]);
    ]

let test_seg_sort_bounds_checked () =
  let data = [| 1.; 2.; 3. |] in
  Alcotest.check_raises "negative lo" (Invalid_argument "Seg_sort.sort_floats: segment out of bounds")
    (fun () -> Seg_sort.sort_floats data ~lo:(-1) ~len:2);
  Alcotest.check_raises "overrun" (Invalid_argument "Seg_sort.sort_floats: segment out of bounds")
    (fun () -> Seg_sort.sort_floats data ~lo:2 ~len:2)

let qcheck_seg_sort_generic =
  QCheck.Test.make ~name:"generic segment sort matches Array.sort" ~count:200
    QCheck.(
      triple
        (array_of_size Gen.(int_range 0 200) (int_range (-500) 500))
        small_nat small_nat)
    (fun (keys, a, b) ->
      let n = Array.length keys in
      let lo = if n = 0 then 0 else a mod (n + 1) in
      let len = if n - lo = 0 then 0 else b mod (n - lo + 1) in
      let data = Array.copy keys in
      Seg_sort.sort ~cmp:Int.compare data ~lo ~len;
      let expected =
        let out = Array.copy keys in
        let seg = Array.sub keys lo len in
        Array.sort Int.compare seg;
        Array.blit seg 0 out lo len;
        out
      in
      data = expected)

(* --- allocation contract ----------------------------------------------- *)

let minor_words_of f =
  Gc.full_major ();
  let before = Gc.minor_words () in
  f ();
  Gc.minor_words () -. before

let test_partition_allocation_o_p () =
  let n = 200_000 in
  let keys = float_keys ~seed:18 n in
  let splitters = float_splitters ~seed:19 keys ~p:16 in
  (* Warm-up so one-time setup is not charged. *)
  ignore (Scatter.partition_floats keys ~splitters);
  ignore (list_based_partition ~cmp:Float.compare keys ~splitters);
  let kernel = minor_words_of (fun () -> ignore (Scatter.partition_floats keys ~splitters)) in
  let legacy =
    minor_words_of (fun () -> ignore (list_based_partition ~cmp:Float.compare keys ~splitters))
  in
  (* The counting kernel's output array goes straight to the major heap
     (> Max_young_wosize), so its minor-heap footprint is the O(p)
     auxiliary state only; the cons-per-key path burns O(n) words. *)
  checkb
    (Printf.sprintf "kernel minor words O(p), not O(n): %.0f for n=%d" kernel n)
    true
    (kernel < float_of_int n /. 4.);
  checkb
    (Printf.sprintf "list-based reference is O(n): %.0f for n=%d" legacy n)
    true
    (legacy > float_of_int n);
  (* And phase 3 on the flat array: in-place segment sort allocates
     nothing per element either. *)
  let flat = Scatter.partition_floats keys ~splitters in
  let sort_alloc =
    minor_words_of (fun () ->
        let sl = Scatter.slice_make () in
        for b = 0 to Scatter.num_buckets flat - 1 do
          Scatter.bucket_slice flat b sl;
          Seg_sort.sort_floats flat.Scatter.data ~lo:sl.Scatter.lo ~len:sl.Scatter.len
        done)
  in
  checkb
    (Printf.sprintf "segment sorts allocation-free: %.0f words" sort_alloc)
    true
    (sort_alloc < float_of_int n /. 4.)

let suites =
  [
    ( "scatter kernel",
      [
        Alcotest.test_case "permutation + offsets" `Quick test_partition_permutation;
        Alcotest.test_case "respects splitters" `Quick test_partition_respects_splitters;
        Alcotest.test_case "byte-identical to list-based" `Quick test_partition_matches_list_based;
        Alcotest.test_case "generic ints" `Quick test_partition_generic_ints;
        Alcotest.test_case "empty and degenerate" `Quick test_partition_empty_and_degenerate;
        Alcotest.test_case "histogram = bucket sizes" `Quick test_histogram_matches_partition;
        Alcotest.test_case "bucket_index_floats agrees" `Quick test_bucket_index_floats_agrees;
        Alcotest.test_case "pool identical at any domain count" `Quick
          test_pool_partition_identical_any_domains;
        Alcotest.test_case "pool identical (generic)" `Quick test_pool_partition_generic_identical;
        Alcotest.test_case "multicore sort, forced domains" `Quick
          test_multicore_sort_identical_forced_domains;
        Alcotest.test_case "O(p) auxiliary allocation" `Quick test_partition_allocation_o_p;
      ] );
    ( "segment sort",
      [
        Alcotest.test_case "sorts a segment in place" `Quick test_seg_sort_floats;
        Alcotest.test_case "adversarial inputs" `Quick test_seg_sort_adversarial;
        Alcotest.test_case "bounds checked" `Quick test_seg_sort_bounds_checked;
        QCheck_alcotest.to_alcotest qcheck_seg_sort_generic;
      ] );
  ]
