(* The MapReduce runtime: scheduler policies, speculation, shuffle, the
   engine, and the ready-made jobs. *)

module Task = Mapreduce.Task
module Scheduler = Mapreduce.Scheduler
module Shuffle = Mapreduce.Shuffle
module Engine = Mapreduce.Engine
module Jobs = Mapreduce.Jobs
module Star = Platform.Star
module Rng = Numerics.Rng

let checkb = Alcotest.(check bool)
let checkf msg ?(eps = 1e-9) expected actual =
  Alcotest.(check (float eps)) msg expected actual

let unit_block _ = 1.

let simple_tasks n =
  Array.init n (fun i -> Task.make ~id:i ~data_ids:[| i |] ~cost:1.)

let test_all_tasks_complete () =
  let star = Star.of_speeds [ 1.; 2. ] in
  let outcome = Scheduler.run star ~tasks:(simple_tasks 20) ~block_size:unit_block in
  Array.iter (fun c -> checkb "finite completion" true (Float.is_finite c))
    outcome.Scheduler.completion;
  Array.iter (fun w -> checkb "winner assigned" true (w >= 0)) outcome.Scheduler.winner

let test_empty_task_list () =
  let star = Star.of_speeds [ 1. ] in
  let outcome = Scheduler.run star ~tasks:[||] ~block_size:unit_block in
  checkf "zero makespan" 0. outcome.Scheduler.makespan;
  Alcotest.(check int) "no assignments" 0 (List.length outcome.Scheduler.assignments)

let test_single_worker_sequential () =
  let star = Star.of_speeds ~bandwidth:1. [ 1. ] in
  let outcome = Scheduler.run star ~tasks:(simple_tasks 5) ~block_size:unit_block in
  (* Each task: 1 data unit then 1 work unit: makespan 10. *)
  checkf "sequential makespan" 10. outcome.Scheduler.makespan

let test_fifo_order_on_single_worker () =
  let star = Star.of_speeds [ 1. ] in
  let outcome = Scheduler.run star ~tasks:(simple_tasks 5) ~block_size:unit_block in
  let order = List.map (fun a -> a.Scheduler.task) outcome.Scheduler.assignments in
  Alcotest.(check (list int)) "submission order" [ 0; 1; 2; 3; 4 ] order

let test_faster_worker_takes_more () =
  (* Compute-bound tasks (cost 9 vs 1 data unit) so that the 9x faster
     worker indeed finishes tasks ~5x quicker. *)
  let star = Star.of_speeds [ 1.; 9. ] in
  let tasks = Array.init 60 (fun i -> Task.make ~id:i ~data_ids:[| i |] ~cost:9.) in
  let outcome = Scheduler.run star ~tasks ~block_size:unit_block in
  checkb "fast worker dominates" true
    (outcome.Scheduler.per_worker_tasks.(1) > 3 * outcome.Scheduler.per_worker_tasks.(0))

let test_cache_avoids_refetch () =
  (* Two tasks sharing a block: the second fetch is free on the same
     worker. *)
  let star = Star.of_speeds [ 1. ] in
  let tasks =
    [| Task.make ~id:0 ~data_ids:[| 7 |] ~cost:1.; Task.make ~id:1 ~data_ids:[| 7 |] ~cost:1. |]
  in
  let outcome = Scheduler.run star ~tasks ~block_size:(fun _ -> 10.) in
  checkf "one fetch only" 10. outcome.Scheduler.communication

let test_affinity_prefers_cached () =
  (* Worker caches block 0 via task 0; under affinity it should then
     prefer task 2 (same block) over task 1. *)
  let star = Star.of_speeds [ 1. ] in
  let tasks =
    [|
      Task.make ~id:0 ~data_ids:[| 0 |] ~cost:1.;
      Task.make ~id:1 ~data_ids:[| 1 |] ~cost:1.;
      Task.make ~id:2 ~data_ids:[| 0 |] ~cost:1.;
    |]
  in
  let config = { Scheduler.default_config with policy = Scheduler.Affinity } in
  let outcome = Scheduler.run ~config star ~tasks ~block_size:(fun _ -> 5.) in
  let order = List.map (fun a -> a.Scheduler.task) outcome.Scheduler.assignments in
  Alcotest.(check (list int)) "affinity order" [ 0; 2; 1 ] order

let test_affinity_reduces_comm () =
  (* Many tasks over few shared blocks on a heterogeneous platform. *)
  let rng = Rng.create ~seed:51 () in
  let star = Platform.Profiles.generate rng ~p:4 Platform.Profiles.paper_uniform in
  let tasks =
    Array.init 64 (fun i -> Task.make ~id:i ~data_ids:[| i mod 8; 8 + (i / 8) |] ~cost:4.)
  in
  let run policy =
    (Scheduler.run ~config:{ Scheduler.default_config with policy } star ~tasks
       ~block_size:(fun _ -> 3.))
      .Scheduler.communication
  in
  checkb "affinity <= fifo" true (run Scheduler.Affinity <= run Scheduler.Fifo +. 1e-9)

let test_speculation_duplicates_straggler () =
  (* A slow worker grabs the last task; with speculation the fast worker
     re-executes it and wins. *)
  let star = Star.of_speeds [ 0.05; 10. ] in
  let tasks = simple_tasks 3 in
  let plain = Scheduler.run star ~tasks ~block_size:unit_block in
  let spec =
    Scheduler.run
      ~config:{ Scheduler.default_config with speculation = Scheduler.At_idle }
      star ~tasks ~block_size:unit_block
  in
  checkb "speculation launched" true (spec.Scheduler.duplicates > 0);
  checkb "speculation helps makespan" true
    (spec.Scheduler.makespan < plain.Scheduler.makespan)

let test_speculation_never_hurts_completion () =
  let rng = Rng.create ~seed:52 () in
  let star = Platform.Profiles.generate rng ~p:4 Platform.Profiles.paper_lognormal in
  let tasks = simple_tasks 10 in
  let plain = Scheduler.run star ~tasks ~block_size:unit_block in
  let spec =
    Scheduler.run
      ~config:{ Scheduler.default_config with speculation = Scheduler.At_idle }
      star ~tasks ~block_size:unit_block
  in
  checkb "makespan not worse" true
    (spec.Scheduler.makespan <= plain.Scheduler.makespan +. 1e-9)

let test_imbalance_metric () =
  let star = Star.of_speeds [ 1.; 1. ] in
  let outcome = Scheduler.run star ~tasks:(simple_tasks 4) ~block_size:unit_block in
  checkf "perfectly balanced" 0. (Scheduler.imbalance outcome)

let qcheck_scheduler_conservation =
  QCheck.Test.make ~name:"scheduler: copies cover all tasks exactly once without speculation"
    ~count:100
    QCheck.(pair (list_of_size Gen.(int_range 1 6) (float_range 0.2 8.)) (int_range 0 40))
    (fun (speeds, n_tasks) ->
      let star = Star.of_speeds speeds in
      let outcome = Scheduler.run star ~tasks:(simple_tasks n_tasks) ~block_size:unit_block in
      Array.fold_left ( + ) 0 outcome.Scheduler.per_worker_tasks = n_tasks
      && outcome.Scheduler.duplicates = 0)

(* --- shuffle --- *)

let test_shuffle_groups_and_reduces () =
  let star = Star.of_speeds [ 1.; 1. ] in
  let pairs = [ ("a", 1, 0); ("b", 2, 0); ("a", 3, 1) ] in
  let output, stats = Shuffle.run star ~pairs ~reduce:(fun _ vs -> List.fold_left ( + ) 0 vs) in
  let sorted = List.sort compare output in
  Alcotest.(check (list (pair string int))) "reduced" [ ("a", 4); ("b", 2) ] sorted;
  Alcotest.(check int) "pair count" 3 stats.Shuffle.pairs

let test_shuffle_local_pairs_free () =
  let star = Star.of_speeds [ 1.; 1. ] in
  let key = "k" in
  let home = Shuffle.placement ~p:2 key in
  let pairs = [ (key, 1, home); (key, 2, home) ] in
  let _, stats = Shuffle.run star ~pairs ~reduce:(fun _ vs -> List.fold_left ( + ) 0 vs) in
  checkf "no remote volume" 0. stats.Shuffle.volume

let test_shuffle_value_order_preserved () =
  let star = Star.of_speeds [ 1. ] in
  let pairs = [ ("k", 1, 0); ("k", 2, 0); ("k", 3, 0) ] in
  let output, _ = Shuffle.run star ~pairs ~reduce:(fun _ vs -> List.hd vs) in
  Alcotest.(check (list (pair string int))) "first value wins" [ ("k", 1) ] output

(* --- engine + jobs --- *)

let test_word_count () =
  let docs = [| "the cat sat"; "the dog"; "cat" |] in
  let star = Star.of_speeds [ 1.; 2. ] in
  let job = Jobs.word_count ~docs in
  let result = Engine.run star job ~reduce:(fun _ vs -> List.fold_left ( + ) 0 vs) in
  let counts = List.sort compare result.Engine.output in
  Alcotest.(check (list (pair string int)))
    "word counts"
    [ ("cat", 2); ("dog", 1); ("sat", 1); ("the", 2) ]
    counts

let test_outer_product_job_correct () =
  let rng = Rng.create ~seed:53 () in
  let n = 32 in
  let a = Array.init n (fun _ -> Rng.uniform rng (-1.) 1.) in
  let b = Array.init n (fun _ -> Rng.uniform rng (-1.) 1.) in
  let star = Star.of_speeds [ 1.; 3. ] in
  let job = Jobs.outer_product ~a ~b ~chunk:8 in
  let result = Engine.run star job ~reduce:(fun _ vs -> List.fold_left ( +. ) 0. vs) in
  checkb "n² pairs" true (List.length result.Engine.output = n * n);
  List.iter
    (fun ((i, j), v) -> checkf "product" ~eps:1e-12 (a.(i) *. b.(j)) v)
    result.Engine.output

let test_matmul_replicated_correct () =
  let rng = Rng.create ~seed:54 () in
  let n = 8 in
  let a = Linalg.Matrix.random rng ~rows:n ~cols:n in
  let b = Linalg.Matrix.random rng ~rows:n ~cols:n in
  let star = Star.of_speeds [ 1.; 2.; 3. ] in
  let job =
    Jobs.matmul_replicated ~a:(Linalg.Matrix.get a) ~b:(Linalg.Matrix.get b) ~n ~chunk:2
  in
  let result = Engine.run star job ~reduce:(fun _ vs -> List.fold_left ( +. ) 0. vs) in
  let reference = Linalg.Matrix.mul a b in
  Alcotest.(check int) "n² outputs" (n * n) (List.length result.Engine.output);
  List.iter
    (fun ((i, j), v) -> checkf "C(i,j)" ~eps:1e-9 (Linalg.Matrix.get reference i j) v)
    result.Engine.output

let test_replication_factor () =
  checkf "n/chunk" 4. (Jobs.replication_factor ~n:32 ~chunk:8)

let test_job_chunk_validation () =
  checkb "bad chunk rejected" true
    (try
       ignore (Jobs.outer_product ~a:[| 1.; 2.; 3. |] ~b:[| 1.; 2.; 3. |] ~chunk:2);
       false
     with Invalid_argument _ -> true)

let test_engine_id_validation () =
  let star = Star.of_speeds [ 1. ] in
  let bad =
    {
      Engine.tasks = [| Task.make ~id:5 ~data_ids:[| 0 |] ~cost:1. |];
      execute = (fun _ -> []);
      block_size = unit_block;
    }
  in
  checkb "bad ids rejected" true
    (try
       ignore (Engine.run star bad ~reduce:(fun _ v -> List.hd v));
       false
     with Invalid_argument _ -> true)

let test_total_communication () =
  let docs = [| "a b"; "c d" |] in
  let star = Star.of_speeds [ 1. ] in
  let job = Jobs.word_count ~docs in
  let result = Engine.run star job ~reduce:(fun _ vs -> List.fold_left ( + ) 0 vs) in
  checkb "total comm = map + shuffle" true
    (Engine.total_communication result
    = result.Engine.map.Scheduler.communication +. result.Engine.shuffle.Shuffle.volume)

let suites =
  [
    ( "mapreduce scheduler",
      [
        Alcotest.test_case "all tasks complete" `Quick test_all_tasks_complete;
        Alcotest.test_case "empty job" `Quick test_empty_task_list;
        Alcotest.test_case "single worker" `Quick test_single_worker_sequential;
        Alcotest.test_case "fifo order" `Quick test_fifo_order_on_single_worker;
        Alcotest.test_case "faster takes more" `Quick test_faster_worker_takes_more;
        Alcotest.test_case "cache avoids refetch" `Quick test_cache_avoids_refetch;
        Alcotest.test_case "affinity prefers cached" `Quick test_affinity_prefers_cached;
        Alcotest.test_case "affinity reduces comm" `Quick test_affinity_reduces_comm;
        Alcotest.test_case "speculation duplicates straggler" `Quick
          test_speculation_duplicates_straggler;
        Alcotest.test_case "speculation never hurts" `Quick
          test_speculation_never_hurts_completion;
        Alcotest.test_case "imbalance metric" `Quick test_imbalance_metric;
        QCheck_alcotest.to_alcotest qcheck_scheduler_conservation;
      ] );
    ( "shuffle",
      [
        Alcotest.test_case "groups and reduces" `Quick test_shuffle_groups_and_reduces;
        Alcotest.test_case "local pairs free" `Quick test_shuffle_local_pairs_free;
        Alcotest.test_case "value order preserved" `Quick test_shuffle_value_order_preserved;
      ] );
    ( "mapreduce jobs",
      [
        Alcotest.test_case "word count" `Quick test_word_count;
        Alcotest.test_case "outer product job" `Quick test_outer_product_job_correct;
        Alcotest.test_case "replicated matmul" `Quick test_matmul_replicated_correct;
        Alcotest.test_case "replication factor" `Quick test_replication_factor;
        Alcotest.test_case "chunk validation" `Quick test_job_chunk_validation;
        Alcotest.test_case "task id validation" `Quick test_engine_id_validation;
        Alcotest.test_case "total communication" `Quick test_total_communication;
      ] );
  ]
