(* The fault-injection layer: deterministic plans, the fault-aware
   scheduler semantics, and Pool.submit's retry/quarantine path. *)

module Plan = Fault.Plan
module Clock = Fault.Clock
module Scheduler = Mapreduce.Scheduler
module Task = Mapreduce.Task
module Star = Platform.Star
module Rng = Numerics.Rng

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf msg ?(eps = 1e-9) expected actual =
  Alcotest.(check (float eps)) msg expected actual

let unit_block _ = 1.

let simple_tasks ?(cost = 1.) n =
  Array.init n (fun i -> Task.make ~id:i ~data_ids:[| i |] ~cost)

let all_complete outcome =
  Array.for_all Float.is_finite outcome.Scheduler.completion

(* --- Fault.Plan construction and queries --- *)

let test_plan_validation () =
  let expect_invalid msg f =
    checkb msg true
      (match f () with exception Invalid_argument _ -> true | _ -> false)
  in
  expect_invalid "worker out of range" (fun () ->
      Plan.make ~crashes:[ { Plan.worker = 3; at = 1.; recovery = None } ] ~p:2 ());
  expect_invalid "recovery before crash" (fun () ->
      Plan.make ~crashes:[ { Plan.worker = 0; at = 2.; recovery = Some 1. } ] ~p:1 ());
  expect_invalid "overlapping crash intervals" (fun () ->
      Plan.make
        ~crashes:
          [
            { Plan.worker = 0; at = 1.; recovery = Some 5. };
            { Plan.worker = 0; at = 3.; recovery = Some 9. };
          ]
        ~p:1 ());
  expect_invalid "crash after permanent crash" (fun () ->
      Plan.make
        ~crashes:
          [
            { Plan.worker = 0; at = 1.; recovery = None };
            { Plan.worker = 0; at = 3.; recovery = Some 9. };
          ]
        ~p:1 ());
  expect_invalid "slowdown factor < 1" (fun () ->
      Plan.make
        ~slowdowns:[ { Plan.worker = 0; from_time = 0.; until = 1.; factor = 0.5 } ]
        ~p:1 ());
  expect_invalid "fetch probability out of range" (fun () ->
      Plan.make ~fetch_failure:[ (0, 1.5) ] ~p:1 ())

let test_plan_slowdown_integrator () =
  (* Factor-2 window on [2, 6): work accrues at half speed inside. *)
  let plan =
    Plan.make
      ~slowdowns:[ { Plan.worker = 0; from_time = 2.; until = 6.; factor = 2. } ]
      ~p:1 ()
  in
  (* 3 units of work from t=0: 2 before the window, 1 inside costs 2. *)
  checkf "advance through window" 4. (Plan.advance plan ~worker:0 ~start:0. ~duration:3.);
  (* advance and work_between are inverses. *)
  let finish = Plan.advance plan ~worker:0 ~start:1. ~duration:4. in
  checkf "inverse" 4. (Plan.work_between plan ~worker:0 ~start:1. ~until:finish);
  (* Other workers are unaffected. *)
  checkf "unaffected worker" 3.
    (Plan.advance plan ~worker:0 ~start:10. ~duration:3. -. 10.)

let test_plan_fetch_hash_deterministic () =
  let plan = Plan.make ~fetch_failure:[ (0, 0.5); (1, 0.5) ] ~seed:7 ~p:2 () in
  let fails w a = Plan.fetch_fails plan ~worker:w ~attempt:a in
  (* Same query twice: same answer (pure hash, no hidden state). *)
  for a = 0 to 63 do
    checkb "stable" (fails 0 a) (fails 0 a);
    checkb "stable w1" (fails 1 a) (fails 1 a)
  done;
  (* Roughly half the attempts fail at q = 0.5. *)
  let n = ref 0 in
  for a = 0 to 999 do
    if fails 0 a then incr n
  done;
  checkb "hash is unbiased-ish" true (!n > 400 && !n < 600);
  (* q = 0 never fails, q = 1 always fails. *)
  let sure = Plan.make ~fetch_failure:[ (0, 1.) ] ~p:1 () in
  checkb "q=1 fails" true (Plan.fetch_fails sure ~worker:0 ~attempt:3);
  checkb "q=0 ok" false (Plan.fetch_fails Plan.none ~worker:0 ~attempt:3)

let test_plan_generate_deterministic () =
  let gen seed =
    Plan.generate ~rng:(Rng.create ~seed ()) ~p:8 ~horizon:100. ~crash_rate:0.5
      ~slowdown_rate:0.5 ~fetch_failure:0.1 ()
  in
  let a = gen 42 and b = gen 42 and c = gen 43 in
  checkb "same seed, same crashes" true (Plan.crashes a = Plan.crashes b);
  checkb "same seed, same slowdowns" true (Plan.slowdowns a = Plan.slowdowns b);
  checkb "different seed, different plan" true
    (Plan.crashes a <> Plan.crashes c || Plan.slowdowns a <> Plan.slowdowns c)

(* --- scheduler under injected faults --- *)

let test_crash_before_first_assignment () =
  (* Worker 0 is down from t=0; worker 1 does everything. *)
  let star = Star.of_speeds [ 1.; 1. ] in
  let plan =
    Plan.make ~crashes:[ { Plan.worker = 0; at = 0.; recovery = None } ] ~p:2 ()
  in
  let outcome =
    Scheduler.run ~faults:plan star ~tasks:(simple_tasks 6) ~block_size:unit_block
  in
  checkb "all tasks complete" true (all_complete outcome);
  checki "crashed worker ran nothing" 0 outcome.Scheduler.per_worker_tasks.(0);
  checki "survivor ran everything" 6 outcome.Scheduler.per_worker_tasks.(1);
  checki "one idle worker" 1 outcome.Scheduler.idle_workers;
  checki "crash recorded" 1 outcome.Scheduler.crashes_survived

let test_crash_of_sole_copy_of_last_task () =
  (* One worker, crash mid-task with recovery: the in-flight copy dies,
     is re-enqueued with backoff, and completes after recovery. *)
  let star = Star.of_speeds ~bandwidth:1e9 [ 1. ] in
  let tasks = simple_tasks ~cost:10. 1 in
  let plan =
    Plan.make ~crashes:[ { Plan.worker = 0; at = 5.; recovery = Some 8. } ] ~p:1 ()
  in
  let outcome = Scheduler.run ~faults:plan star ~tasks ~block_size:(fun _ -> 0.) in
  checkb "task completes after recovery" true (all_complete outcome);
  checki "two copies started" 2 outcome.Scheduler.attempts.(0);
  checkb "retry recorded" true (outcome.Scheduler.retries >= 1);
  checkb "restarts after recovery" true (outcome.Scheduler.makespan >= 8. +. 10.);
  checkb "killed progress counted as waste" true (outcome.Scheduler.wasted_work > 0.);
  checkb "fault log has the crash" true
    (List.exists
       (function Clock.Crash { worker = 0; _ } -> true | _ -> false)
       outcome.Scheduler.fault_log)

let test_permanent_crash_leaves_unfinished () =
  (* Sole worker dies for good mid-run: remaining tasks stay unfinished
     but the scheduler still terminates. *)
  let star = Star.of_speeds ~bandwidth:1e9 [ 1. ] in
  let plan =
    Plan.make ~crashes:[ { Plan.worker = 0; at = 2.5; recovery = None } ] ~p:1 ()
  in
  let outcome =
    Scheduler.run ~faults:plan star ~tasks:(simple_tasks 5) ~block_size:(fun _ -> 0.)
  in
  checkb "some tasks unfinished" true (outcome.Scheduler.unfinished <> []);
  checkb "early tasks done" true (Float.is_finite outcome.Scheduler.completion.(0));
  checkf "imbalance stays finite" 0. (Scheduler.imbalance outcome)

let test_total_fetch_failure_exhausts_retries () =
  (* Every fetch on the only link fails: retries exhaust, the pair is
     quarantined, the task can never run — but the run terminates. *)
  let star = Star.of_speeds [ 1. ] in
  let plan = Plan.make ~fetch_failure:[ (0, 1.) ] ~p:1 () in
  let outcome =
    Scheduler.run ~faults:plan star ~tasks:(simple_tasks 2) ~block_size:unit_block
  in
  checki "nothing completes" 2 (List.length outcome.Scheduler.unfinished);
  checkb "fetch retries recorded" true (outcome.Scheduler.retries >= 3);
  checkb "quarantine in fault log" true
    (List.exists
       (function Clock.Quarantine _ -> true | _ -> false)
       outcome.Scheduler.fault_log);
  (* A second worker with a clean link rescues the same workload. *)
  let star2 = Star.of_speeds [ 1.; 1. ] in
  let plan2 = Plan.make ~fetch_failure:[ (0, 1.) ] ~p:2 () in
  let rescued =
    Scheduler.run ~faults:plan2 star2 ~tasks:(simple_tasks 2) ~block_size:unit_block
  in
  checkb "clean worker rescues" true (all_complete rescued)

let test_fetch_failure_retries_then_succeeds () =
  (* Flaky but not dead: with q = 0.5 some fetches fail, all tasks still
     complete and every failure shows up in the log. *)
  let star = Star.of_speeds [ 1.; 1. ] in
  let plan = Plan.make ~fetch_failure:[ (0, 0.5); (1, 0.5) ] ~seed:11 ~p:2 () in
  let outcome =
    Scheduler.run ~faults:plan star ~tasks:(simple_tasks 16) ~block_size:unit_block
  in
  checkb "all complete despite flaky links" true (all_complete outcome);
  let failures =
    List.length
      (List.filter
         (function Clock.Fetch_failure _ -> true | _ -> false)
         outcome.Scheduler.fault_log)
  in
  checkb "failures were injected" true (failures > 0);
  checkb "makespan degraded" true
    (outcome.Scheduler.makespan
    > (Scheduler.run star ~tasks:(simple_tasks 16) ~block_size:unit_block)
        .Scheduler.makespan)

let faulted_run seed =
  let rng = Rng.create ~seed () in
  let star = Star.of_speeds [ 1.; 2.; 1.; 0.5 ] in
  let plan =
    Plan.generate ~rng ~p:4 ~horizon:30. ~crash_rate:0.6 ~slowdown_rate:0.5
      ~fetch_failure:0.2 ()
  in
  Scheduler.run
    ~config:{ Scheduler.default_config with speculation = Scheduler.Late { threshold = 0.5 } }
    ~jitter:(Rng.split rng, 0.6)
    ~faults:plan star ~tasks:(simple_tasks ~cost:4. 24) ~block_size:unit_block

let test_replay_determinism_across_domains () =
  (* The same seeded plan replays byte-identically whether the
     surrounding trial loop runs on 1 domain or several: outcomes are
     pure functions of their inputs, so hammer the same run from a
     parallel loop and compare every field. *)
  let reference = faulted_run 99 in
  let trials = 8 in
  let results = Array.make trials None in
  Numerics.Parallel.parallel_for ~domains:4 trials (fun t ->
      results.(t) <- Some (faulted_run 99));
  Array.iter
    (fun r ->
      match r with
      | None -> Alcotest.fail "trial did not run"
      | Some o ->
          checkb "assignments identical" true
            (o.Scheduler.assignments = reference.Scheduler.assignments);
          checkb "completions identical" true
            (o.Scheduler.completion = reference.Scheduler.completion);
          checkb "fault log identical" true
            (o.Scheduler.fault_log = reference.Scheduler.fault_log);
          checkf "same makespan" reference.Scheduler.makespan o.Scheduler.makespan;
          checki "same retries" reference.Scheduler.retries o.Scheduler.retries)
    results

let test_outcome_bookkeeping () =
  (* A run with >= 1 crash and >= 1 fetch failure: all tasks complete
     and the outcome's counters agree with the fault log. *)
  let star = Star.of_speeds [ 1.; 1. ] in
  let plan =
    Plan.make
      ~crashes:[ { Plan.worker = 0; at = 3.; recovery = Some 6. } ]
      ~fetch_failure:[ (1, 0.4) ] ~seed:3 ~p:2 ()
  in
  let outcome =
    Scheduler.run ~faults:plan star ~tasks:(simple_tasks ~cost:2. 12)
      ~block_size:unit_block
  in
  checkb "all tasks complete" true (all_complete outcome);
  let count f = List.length (List.filter f outcome.Scheduler.fault_log) in
  checki "crashes match log" outcome.Scheduler.crashes_survived
    (count (function Clock.Crash _ -> true | _ -> false));
  let logged_failures = count (function Clock.Fetch_failure _ -> true | _ -> false) in
  let logged_retries = count (function Clock.Task_retry _ -> true | _ -> false) in
  checkb "a fetch failure was injected" true (logged_failures > 0);
  checki "retries = fetch failures + re-enqueues" outcome.Scheduler.retries
    (logged_failures + logged_retries);
  checkb "attempts cover completions" true
    (Array.for_all (fun a -> a >= 1) outcome.Scheduler.attempts)

let test_slowdown_stretches_makespan () =
  let star = Star.of_speeds ~bandwidth:1e9 [ 1. ] in
  let tasks = simple_tasks ~cost:4. 3 in
  let plan =
    Plan.make
      ~slowdowns:[ { Plan.worker = 0; from_time = 0.; until = 100.; factor = 3. } ]
      ~p:1 ()
  in
  let plain = Scheduler.run star ~tasks ~block_size:(fun _ -> 0.) in
  let slowed = Scheduler.run ~faults:plan star ~tasks ~block_size:(fun _ -> 0.) in
  checkf "3x slower" (3. *. plain.Scheduler.makespan) slowed.Scheduler.makespan

let test_clock_arm_schedules_plan () =
  (* Clock.arm turns plan crashes into Des.Engine callbacks. *)
  let plan =
    Plan.make
      ~crashes:[ { Plan.worker = 1; at = 2.; recovery = Some 5. } ]
      ~p:2 ()
  in
  let clock = Clock.create plan in
  let engine = Des.Engine.create () in
  let crashes = ref [] and recoveries = ref [] in
  Clock.arm clock engine
    ~on_crash:(fun ~worker eng -> crashes := (worker, Des.Engine.now eng) :: !crashes)
    ~on_recover:(fun ~worker eng ->
      recoveries := (worker, Des.Engine.now eng) :: !recoveries)
    ();
  Des.Engine.run engine;
  checkb "crash fired" true (!crashes = [ (1, 2.) ]);
  checkb "recovery fired" true (!recoveries = [ (1, 5.) ]);
  let tally = Clock.counts clock in
  checki "tally crashes" 1 tally.Clock.crashes;
  checki "tally recoveries" 1 tally.Clock.recoveries

(* --- Pool.submit retry/quarantine --- *)

let test_pool_submit_retry_succeeds () =
  let pool = Exec.Pool.get_global () in
  let calls = ref 0 in
  let flaky () =
    incr calls;
    if !calls < 3 then failwith "flaky" else 42
  in
  let retry = { Exec.Pool.default_retry with max_attempts = 5 } in
  (match Exec.Pool.submit ~retry pool flaky with
  | Ok v -> checki "value" 42 v
  | Error _ -> Alcotest.fail "expected success after retries");
  checki "two failures then success" 3 !calls

let test_pool_submit_quarantine_after_n_throws () =
  let pool = Exec.Pool.get_global () in
  let before = Exec.Pool.quarantined pool in
  let calls = ref 0 in
  let always_fails () =
    incr calls;
    failwith "boom"
  in
  let retry = { Exec.Pool.default_retry with max_attempts = 3 } in
  (match Exec.Pool.submit ~retry pool always_fails with
  | Ok _ -> Alcotest.fail "expected quarantine"
  | Error q ->
      checki "n attempts made" 3 q.Exec.Pool.attempts;
      checkb "deadline not the cause" false q.Exec.Pool.deadline_hit;
      checkb "original exception kept" true
        (match q.Exec.Pool.error with Failure m -> m = "boom" | _ -> false));
  checki "exactly max_attempts calls" 3 !calls;
  checki "quarantine counted" (before + 1) (Exec.Pool.quarantined pool)

let test_pool_submit_deadline () =
  let pool = Exec.Pool.get_global () in
  let retry =
    { Exec.Pool.max_attempts = 50; base_delay = 0.05; max_delay = 0.05; deadline = Some 0.02 }
  in
  (match Exec.Pool.submit ~retry pool (fun () -> failwith "slow") with
  | Ok _ -> Alcotest.fail "expected deadline giveup"
  | Error q ->
      checkb "deadline flagged" true q.Exec.Pool.deadline_hit;
      checkb "gave up early" true (q.Exec.Pool.attempts < 50));
  (* Invalid policies are rejected up front. *)
  checkb "invalid retry rejected" true
    (match
       Exec.Pool.submit ~retry:{ retry with max_attempts = 0 } pool (fun () -> ())
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_pool_backoff_delay () =
  let r =
    { Exec.Pool.max_attempts = 10; base_delay = 1.; max_delay = 5.; deadline = None }
  in
  checkf "first" 1. (Exec.Pool.backoff_delay r ~attempt:1);
  checkf "doubles" 2. (Exec.Pool.backoff_delay r ~attempt:2);
  checkf "capped" 5. (Exec.Pool.backoff_delay r ~attempt:5);
  checkf "zero base means no sleep" 0.
    (Exec.Pool.backoff_delay { r with base_delay = 0. } ~attempt:7)

let qcheck_faulted_runs_terminate =
  QCheck.Test.make
    ~name:"scheduler: every generated fault plan terminates with consistent books"
    ~count:60
    QCheck.(triple small_int (float_range 0. 0.8) (float_range 0. 0.6))
    (fun (seed, crash_rate, fetch_failure) ->
      let rng = Rng.create ~seed:(seed + 1) () in
      let p = 2 + (seed mod 3) in
      let star = Star.of_speeds (List.init p (fun i -> 1. +. float_of_int i)) in
      let plan =
        Plan.generate ~rng ~p ~horizon:20. ~crash_rate ~fetch_failure
          ~slowdown_rate:0.3 ()
      in
      let o =
        Scheduler.run ~faults:plan star ~tasks:(simple_tasks ~cost:2. 12)
          ~block_size:unit_block
      in
      let n_done =
        Array.fold_left (fun acc c -> if Float.is_finite c then acc + 1 else acc) 0
          o.Scheduler.completion
      in
      (* Completed + unfinished partition the tasks; finished tasks have
         a winner and at least one attempt. *)
      n_done + List.length o.Scheduler.unfinished = 12
      && Array.for_all (fun a -> a >= 0) o.Scheduler.attempts
      && List.for_all (fun i -> o.Scheduler.winner.(i) = -1) o.Scheduler.unfinished
      && o.Scheduler.wasted_work >= 0.)

(* --- byte-identity of the rewritten scheduler vs the frozen oracle --- *)

module Oracle = Scheduler_oracle

let oracle_config (c : Scheduler.config) : Oracle.config =
  {
    Oracle.policy =
      (match c.Scheduler.policy with
      | Scheduler.Fifo -> Oracle.Fifo
      | Scheduler.Affinity -> Oracle.Affinity);
    speculation =
      (match c.Scheduler.speculation with
      | Scheduler.Off -> Oracle.Off
      | Scheduler.At_idle -> Oracle.At_idle
      | Scheduler.Late { threshold } -> Oracle.Late { threshold });
    retry = c.Scheduler.retry;
    fetch_timeout = c.Scheduler.fetch_timeout;
  }

(* Exact (=) on every outcome field, floats included: the rewrite must
   reproduce the old scheduler bit for bit, not approximately. *)
let assert_identical name (n : Scheduler.outcome) (o : Oracle.outcome) =
  let chk field ok = checkb (name ^ ": " ^ field) true ok in
  let flat_n =
    List.map
      (fun (a : Scheduler.assignment) ->
        (a.Scheduler.task, a.worker, a.start, a.fetch_end, a.finish, a.fetched))
      n.Scheduler.assignments
  in
  let flat_o =
    List.map
      (fun (a : Oracle.assignment) ->
        (a.Oracle.task, a.worker, a.start, a.fetch_end, a.finish, a.fetched))
      o.Oracle.assignments
  in
  chk "assignments" (flat_n = flat_o);
  chk "completion" (n.Scheduler.completion = o.Oracle.completion);
  chk "winner" (n.Scheduler.winner = o.Oracle.winner);
  chk "makespan" (n.Scheduler.makespan = o.Oracle.makespan);
  chk "busy_until" (n.Scheduler.busy_until = o.Oracle.busy_until);
  chk "communication" (n.Scheduler.communication = o.Oracle.communication);
  chk "per_worker_comm" (n.Scheduler.per_worker_comm = o.Oracle.per_worker_comm);
  chk "per_worker_tasks" (n.Scheduler.per_worker_tasks = o.Oracle.per_worker_tasks);
  chk "duplicates" (n.Scheduler.duplicates = o.Oracle.duplicates);
  chk "retries" (n.Scheduler.retries = o.Oracle.retries);
  chk "crashes_survived" (n.Scheduler.crashes_survived = o.Oracle.crashes_survived);
  chk "attempts" (n.Scheduler.attempts = o.Oracle.attempts);
  chk "idle_workers" (n.Scheduler.idle_workers = o.Oracle.idle_workers);
  chk "unfinished" (n.Scheduler.unfinished = o.Oracle.unfinished);
  chk "wasted_work" (n.Scheduler.wasted_work = o.Oracle.wasted_work);
  chk "fault_log" (n.Scheduler.fault_log = o.Oracle.fault_log);
  chk "events were counted" (n.Scheduler.events_processed > 0)

(* Each scenario rebuilds its plan and jitter RNG from scratch per side,
   so both implementations consume identical randomness. *)
let identity_scenarios :
    (string
    * (unit ->
      Scheduler.config
      * (Rng.t * float) option
      * Plan.t
      * Star.t
      * Task.t array
      * (int -> float)))
    list =
  let affinity_tasks n =
    Array.init n (fun i ->
        Task.make ~id:i ~data_ids:[| i mod 8; (i + 1) mod 8 |] ~cost:2.)
  in
  let generated ~seed ~config () =
    let rng = Rng.create ~seed () in
    let star = Star.of_speeds [ 1.; 2.; 1.; 0.5 ] in
    let plan =
      Plan.generate ~rng ~p:4 ~horizon:30. ~crash_rate:0.6 ~slowdown_rate:0.5
        ~fetch_failure:0.2 ()
    in
    (config, Some (Rng.split rng, 0.6), plan, star, simple_tasks ~cost:4. 24, unit_block)
  in
  let late = { Scheduler.default_config with speculation = Scheduler.Late { threshold = 0.5 } } in
  let at_idle_affinity =
    { Scheduler.default_config with policy = Scheduler.Affinity; speculation = Scheduler.At_idle }
  in
  [
    ( "plain fifo",
      fun () ->
        ( Scheduler.default_config,
          None,
          Plan.none,
          Star.of_speeds [ 1.; 2.; 1. ],
          simple_tasks 16,
          unit_block ) );
    ( "plain affinity shared blocks",
      fun () ->
        ( { Scheduler.default_config with policy = Scheduler.Affinity },
          None,
          Plan.none,
          Star.of_speeds [ 1.; 2. ],
          affinity_tasks 16,
          unit_block ) );
    ( "crash before first assignment",
      fun () ->
        ( Scheduler.default_config,
          None,
          Plan.make ~crashes:[ { Plan.worker = 0; at = 0.; recovery = None } ] ~p:2 (),
          Star.of_speeds [ 1.; 1. ],
          simple_tasks 6,
          unit_block ) );
    ( "crash with recovery",
      fun () ->
        ( Scheduler.default_config,
          None,
          Plan.make ~crashes:[ { Plan.worker = 0; at = 5.; recovery = Some 8. } ] ~p:1 (),
          Star.of_speeds ~bandwidth:1e9 [ 1. ],
          simple_tasks ~cost:10. 1,
          fun _ -> 0. ) );
    ( "permanent crash",
      fun () ->
        ( Scheduler.default_config,
          None,
          Plan.make ~crashes:[ { Plan.worker = 0; at = 2.5; recovery = None } ] ~p:1 (),
          Star.of_speeds ~bandwidth:1e9 [ 1. ],
          simple_tasks 5,
          fun _ -> 0. ) );
    ( "total fetch failure",
      fun () ->
        ( Scheduler.default_config,
          None,
          Plan.make ~fetch_failure:[ (0, 1.) ] ~p:1 (),
          Star.of_speeds [ 1. ],
          simple_tasks 2,
          unit_block ) );
    ( "flaky links",
      fun () ->
        ( Scheduler.default_config,
          None,
          Plan.make ~fetch_failure:[ (0, 0.5); (1, 0.5) ] ~seed:11 ~p:2 (),
          Star.of_speeds [ 1.; 1. ],
          simple_tasks 16,
          unit_block ) );
    ( "crash plus flaky fetch",
      fun () ->
        ( Scheduler.default_config,
          None,
          Plan.make
            ~crashes:[ { Plan.worker = 0; at = 3.; recovery = Some 6. } ]
            ~fetch_failure:[ (1, 0.4) ] ~seed:3 ~p:2 (),
          Star.of_speeds [ 1.; 1. ],
          simple_tasks ~cost:2. 12,
          unit_block ) );
    ( "slowdown window",
      fun () ->
        ( Scheduler.default_config,
          None,
          Plan.make
            ~slowdowns:[ { Plan.worker = 0; from_time = 0.; until = 100.; factor = 3. } ]
            ~p:1 (),
          Star.of_speeds ~bandwidth:1e9 [ 1. ],
          simple_tasks ~cost:4. 3,
          fun _ -> 0. ) );
    ("generated + LATE, seed 99", generated ~seed:99 ~config:late);
    ("generated + LATE, seed 7", generated ~seed:7 ~config:late);
    ("generated + at-idle affinity, seed 5", generated ~seed:5 ~config:at_idle_affinity);
  ]

let test_scheduler_byte_identity () =
  List.iter
    (fun (name, mk) ->
      let config, jitter_n, faults, star, tasks, block_size = mk () in
      let o_new = Scheduler.run ~config ?jitter:jitter_n ~faults star ~tasks ~block_size in
      let config_o, jitter_o, faults_o, star_o, tasks_o, block_size_o = mk () in
      let o_old =
        Oracle.run ~config:(oracle_config config_o) ?jitter:jitter_o ~faults:faults_o
          star_o ~tasks:tasks_o ~block_size:block_size_o
      in
      assert_identical name o_new o_old)
    identity_scenarios

let suites =
  [
    ( "fault plans",
      [
        Alcotest.test_case "validation" `Quick test_plan_validation;
        Alcotest.test_case "slowdown integrator" `Quick test_plan_slowdown_integrator;
        Alcotest.test_case "fetch hash deterministic" `Quick
          test_plan_fetch_hash_deterministic;
        Alcotest.test_case "generate deterministic" `Quick
          test_plan_generate_deterministic;
        Alcotest.test_case "clock arm" `Quick test_clock_arm_schedules_plan;
      ] );
    ( "fault-aware scheduler",
      [
        Alcotest.test_case "crash before first assignment" `Quick
          test_crash_before_first_assignment;
        Alcotest.test_case "crash of sole copy of last task" `Quick
          test_crash_of_sole_copy_of_last_task;
        Alcotest.test_case "permanent crash leaves unfinished" `Quick
          test_permanent_crash_leaves_unfinished;
        Alcotest.test_case "100% fetch failure exhausts retries" `Quick
          test_total_fetch_failure_exhausts_retries;
        Alcotest.test_case "flaky links retried to success" `Quick
          test_fetch_failure_retries_then_succeeds;
        Alcotest.test_case "replay determinism across domains" `Quick
          test_replay_determinism_across_domains;
        Alcotest.test_case "outcome bookkeeping" `Quick test_outcome_bookkeeping;
        Alcotest.test_case "slowdown stretches makespan" `Quick
          test_slowdown_stretches_makespan;
        QCheck_alcotest.to_alcotest qcheck_faulted_runs_terminate;
        Alcotest.test_case "byte-identity vs pre-rewrite oracle" `Quick
          test_scheduler_byte_identity;
      ] );
    ( "pool submit",
      [
        Alcotest.test_case "retry then succeed" `Quick test_pool_submit_retry_succeeds;
        Alcotest.test_case "quarantine after N throws" `Quick
          test_pool_submit_quarantine_after_n_throws;
        Alcotest.test_case "deadline gives up" `Quick test_pool_submit_deadline;
        Alcotest.test_case "backoff delays" `Quick test_pool_backoff_delay;
      ] );
  ]
