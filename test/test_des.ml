(* Discrete-event simulation core: event queue, engine, trace. *)

module Event_queue = Des.Event_queue
module Engine = Des.Engine
module Trace = Des.Trace

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let test_queue_order () =
  let q = Event_queue.create () in
  List.iter (fun (p, v) -> Event_queue.push q ~priority:p v)
    [ (3., "c"); (1., "a"); (2., "b") ];
  let popped = List.init 3 (fun _ -> Event_queue.pop q) in
  Alcotest.(check (list (option (pair (float 0.) string))))
    "ascending priorities"
    [ Some (1., "a"); Some (2., "b"); Some (3., "c") ]
    popped

let test_queue_fifo_ties () =
  let q = Event_queue.create () in
  List.iter (fun v -> Event_queue.push q ~priority:1. v) [ 1; 2; 3; 4 ];
  let order = List.init 4 (fun _ -> match Event_queue.pop q with Some (_, v) -> v | None -> -1) in
  Alcotest.(check (list int)) "FIFO within a timestamp" [ 1; 2; 3; 4 ] order

let test_queue_empty () =
  let q : int Event_queue.t = Event_queue.create () in
  checkb "empty" true (Event_queue.is_empty q);
  checkb "pop none" true (Event_queue.pop q = None);
  checkb "peek none" true (Event_queue.peek q = None)

let test_queue_peek () =
  let q = Event_queue.create () in
  Event_queue.push q ~priority:5. "x";
  Event_queue.push q ~priority:2. "y";
  checkb "peek min" true (Event_queue.peek q = Some (2., "y"));
  Alcotest.(check int) "peek does not remove" 2 (Event_queue.size q)

let test_queue_growth () =
  let q = Event_queue.create ~initial_capacity:1 () in
  for i = 0 to 999 do
    Event_queue.push q ~priority:(float_of_int (999 - i)) i
  done;
  Alcotest.(check int) "size" 1000 (Event_queue.size q);
  let first = Event_queue.pop q in
  checkb "min first" true (first = Some (0., 999))

let test_queue_nan () =
  let q = Event_queue.create () in
  Alcotest.check_raises "nan rejected" (Invalid_argument "Event_queue.push: NaN priority")
    (fun () -> Event_queue.push q ~priority:Float.nan 0)

let test_queue_clear () =
  let q = Event_queue.create () in
  Event_queue.push q ~priority:1. 1;
  Event_queue.clear q;
  checkb "cleared" true (Event_queue.is_empty q)

let test_queue_snapshot () =
  let q = Event_queue.create () in
  List.iter (fun (p, v) -> Event_queue.push q ~priority:p v) [ (2., 20); (1., 10) ];
  Alcotest.(check (list (pair (float 0.) int)))
    "sorted snapshot" [ (1., 10); (2., 20) ] (Event_queue.to_sorted_list q);
  Alcotest.(check int) "snapshot non-destructive" 2 (Event_queue.size q)

let qcheck_queue_sorted =
  QCheck.Test.make ~name:"event queue pops in sorted order" ~count:200
    QCheck.(list_of_size Gen.(int_range 0 200) (float_range 0. 1000.))
    (fun priorities ->
      let q = Event_queue.create () in
      List.iteri (fun i p -> Event_queue.push q ~priority:p i) priorities;
      let rec drain acc =
        match Event_queue.pop q with
        | None -> List.rev acc
        | Some (p, _) -> drain (p :: acc)
      in
      let popped = drain [] in
      popped = List.sort Float.compare priorities)

module Event_heap = Des.Event_heap

(* Drain the heap into (priority, payload) pairs, reading the priority
   before each pop as the API prescribes. *)
let drain_heap h =
  let rec loop acc =
    if Event_heap.is_empty h then List.rev acc
    else
      let p = Event_heap.min_priority h in
      let v = Event_heap.pop h in
      loop ((p, v) :: acc)
  in
  loop []

let test_heap_matches_queue_oracle () =
  (* Same pushes into both structures; the boxed queue's snapshot is the
     ordering oracle, equal-priority FIFO included. *)
  let q = Event_queue.create () in
  let h = Event_heap.create () in
  let rng = ref 123456789 in
  let next () =
    rng := (!rng * 1103515245) + 12345;
    (!rng lsr 11) land 0xFFFF
  in
  for i = 0 to 999 do
    (* few distinct priorities, so ties are common *)
    let p = float_of_int (next () mod 17) in
    Event_queue.push q ~priority:p i;
    Event_heap.push h ~priority:p i
  done;
  let expected = Event_queue.to_sorted_list q in
  Alcotest.(check (list (pair (float 0.) int)))
    "heap pop order = queue oracle" expected (drain_heap h)

let qcheck_heap_sorted =
  QCheck.Test.make ~name:"event heap pops in oracle order" ~count:200
    QCheck.(list_of_size Gen.(int_range 0 200) (float_range 0. 50.))
    (fun priorities ->
      let q = Event_queue.create () in
      let h = Event_heap.create ~initial_capacity:1 () in
      List.iteri
        (fun i p ->
          Event_queue.push q ~priority:p i;
          Event_heap.push h ~priority:p i)
        priorities;
      drain_heap h = Event_queue.to_sorted_list q)

let test_heap_fifo_ties () =
  let h = Event_heap.create () in
  List.iter (fun v -> Event_heap.push h ~priority:1. v) [ 1; 2; 3; 4 ];
  let order = List.map snd (drain_heap h) in
  Alcotest.(check (list int)) "FIFO within a timestamp" [ 1; 2; 3; 4 ] order

let test_heap_growth () =
  let h = Event_heap.create ~initial_capacity:4 () in
  Alcotest.(check int) "initial capacity" 4 (Event_heap.capacity h);
  for i = 0 to 99 do
    Event_heap.push h ~priority:(float_of_int (99 - i)) i
  done;
  Alcotest.(check int) "size" 100 (Event_heap.size h);
  checkb "capacity doubled past demand" true (Event_heap.capacity h >= 100);
  Alcotest.(check (list (pair (float 0.) int)))
    "order survives growth"
    (List.init 100 (fun k -> (float_of_int k, 99 - k)))
    (drain_heap h)

let test_heap_nan () =
  let h = Event_heap.create () in
  Alcotest.check_raises "nan rejected" (Invalid_argument "Event_heap.push: NaN priority")
    (fun () -> Event_heap.push h ~priority:Float.nan 0)

let test_heap_empty_pop () =
  let h = Event_heap.create () in
  checkb "empty" true (Event_heap.is_empty h);
  Alcotest.check_raises "pop on empty" (Invalid_argument "Event_heap.pop: empty heap")
    (fun () -> ignore (Event_heap.pop h))

let test_heap_clear () =
  let h = Event_heap.create () in
  Event_heap.push h ~priority:2. 7;
  Event_heap.push h ~priority:1. 8;
  Event_heap.clear h;
  checkb "cleared" true (Event_heap.is_empty h);
  (* seq restarts, so post-clear ties are FIFO again *)
  Event_heap.push h ~priority:1. 10;
  Event_heap.push h ~priority:1. 11;
  Alcotest.(check (list int)) "fresh FIFO after clear" [ 10; 11 ]
    (List.map snd (drain_heap h))

let test_heap_high_water () =
  let h = Event_heap.create ~initial_capacity:4 () in
  checki "starts at zero" 0 (Event_heap.high_water h);
  for i = 0 to 9 do
    Event_heap.push h ~priority:(float_of_int i) i
  done;
  for _ = 1 to 5 do
    ignore (Event_heap.pop h)
  done;
  Event_heap.push h ~priority:99. 42;
  checki "peak size, not current" 10 (Event_heap.high_water h);
  checki "current size below peak" 6 (Event_heap.size h);
  Event_heap.clear h;
  checki "clear resets the mark" 0 (Event_heap.high_water h)

let minor_words_of f =
  Gc.full_major ();
  let before = Gc.minor_words () in
  f ();
  Gc.minor_words () -. before

let test_heap_zero_alloc () =
  (* Steady-state push+pop at fixed capacity: zero minor words per op.
     [exercise] drives the loop from inside the module, so the proof
     holds in dev-profile builds too (dune's [-opaque] disables the
     cross-module inlining that unboxes [push]'s float argument; see
     the cross-module test below for that path). *)
  let h = Event_heap.create ~initial_capacity:4096 () in
  Event_heap.exercise h ~rounds:1 ~batch:2048;
  let words = minor_words_of (fun () -> Event_heap.exercise h ~rounds:4 ~batch:2048) in
  Alcotest.(check (float 0.)) "0 minor words for 8192 push + 8192 pop" 0. words

let test_heap_cross_module_alloc_bound () =
  (* The out-of-module call path: zero in release builds, at most the
     one boxed float argument per push (2 words) under dev's [-opaque].
     Anything above that means the heap itself started allocating. *)
  let h = Event_heap.create ~initial_capacity:4096 () in
  let ops = 2048 in
  let churn () =
    for i = 0 to ops - 1 do
      Event_heap.push h ~priority:(float_of_int ((i * 7919) land 1023)) i
    done;
    for _ = 1 to ops do
      ignore (Event_heap.pop h)
    done
  in
  churn ();
  let words = minor_words_of churn in
  checkb "at most one float box per push" true (words <= float_of_int (2 * ops))

let test_engine_order () =
  let engine = Engine.create () in
  let log = ref [] in
  Engine.schedule engine ~time:2. (fun _ -> log := "b" :: !log);
  Engine.schedule engine ~time:1. (fun _ -> log := "a" :: !log);
  Engine.schedule engine ~time:3. (fun _ -> log := "c" :: !log);
  Engine.run engine;
  Alcotest.(check (list string)) "handlers in time order" [ "a"; "b"; "c" ] (List.rev !log)

let test_engine_now_advances () =
  let engine = Engine.create () in
  let seen = ref 0. in
  Engine.schedule engine ~time:5. (fun e -> seen := Engine.now e);
  Engine.run engine;
  Alcotest.(check (float 0.)) "now at handler time" 5. !seen

let test_engine_cascade () =
  let engine = Engine.create () in
  let count = ref 0 in
  let rec tick e =
    incr count;
    if !count < 10 then Engine.schedule_after e ~delay:1. tick
  in
  Engine.schedule engine ~time:0. tick;
  Engine.run engine;
  Alcotest.(check int) "cascaded events" 10 !count;
  Alcotest.(check (float 0.)) "final time" 9. (Engine.now engine)

let test_engine_causality () =
  let engine = Engine.create () in
  Engine.schedule engine ~time:10. (fun e ->
      try
        Engine.schedule e ~time:5. (fun _ -> ());
        Alcotest.fail "expected Causality"
      with Engine.Causality _ -> ());
  Engine.run engine

let test_engine_horizon () =
  let engine = Engine.create () in
  let fired = ref [] in
  List.iter
    (fun t -> Engine.schedule engine ~time:t (fun _ -> fired := t :: !fired))
    [ 1.; 2.; 3.; 4. ];
  Engine.run ~until:2.5 engine;
  Alcotest.(check (list (float 0.))) "only before horizon" [ 1.; 2. ] (List.rev !fired);
  Alcotest.(check int) "rest still queued" 2 (Engine.pending engine)

let test_trace_accounting () =
  let trace = Trace.create () in
  Trace.record trace ~resource:"w1" ~start:0. ~finish:2. ~label:"a";
  Trace.record trace ~resource:"w1" ~start:3. ~finish:4. ~label:"b";
  Trace.record trace ~resource:"w2" ~start:0. ~finish:1. ~label:"c";
  Alcotest.(check (list string)) "resources" [ "w1"; "w2" ] (Trace.resources trace);
  Alcotest.(check (float 1e-9)) "busy" 3. (Trace.busy_time trace ~resource:"w1");
  Alcotest.(check (float 1e-9)) "makespan" 4. (Trace.makespan trace);
  Alcotest.(check (float 1e-9)) "utilization" 0.75 (Trace.utilization trace ~resource:"w1")

let test_trace_bad_interval () =
  let trace = Trace.create () in
  Alcotest.check_raises "finish < start" (Invalid_argument "Trace.record: finish < start")
    (fun () -> Trace.record trace ~resource:"w" ~start:2. ~finish:1. ~label:"x")

let test_trace_gantt () =
  let trace = Trace.create () in
  Trace.record trace ~resource:"w1" ~start:0. ~finish:1. ~label:"x";
  let gantt = Trace.render_gantt trace in
  checkb "gantt mentions resource" true
    (String.length gantt > 0
    &&
    let lines = String.split_on_char '\n' gantt in
    List.exists (fun l -> String.length l >= 2 && l.[0] = 'w') lines)

let suites =
  [
    ( "event queue",
      [
        Alcotest.test_case "ordering" `Quick test_queue_order;
        Alcotest.test_case "FIFO ties" `Quick test_queue_fifo_ties;
        Alcotest.test_case "empty" `Quick test_queue_empty;
        Alcotest.test_case "peek" `Quick test_queue_peek;
        Alcotest.test_case "growth" `Quick test_queue_growth;
        Alcotest.test_case "NaN rejected" `Quick test_queue_nan;
        Alcotest.test_case "clear" `Quick test_queue_clear;
        Alcotest.test_case "snapshot" `Quick test_queue_snapshot;
        QCheck_alcotest.to_alcotest qcheck_queue_sorted;
      ] );
    ( "event heap",
      [
        Alcotest.test_case "matches queue oracle" `Quick test_heap_matches_queue_oracle;
        QCheck_alcotest.to_alcotest qcheck_heap_sorted;
        Alcotest.test_case "FIFO ties" `Quick test_heap_fifo_ties;
        Alcotest.test_case "growth" `Quick test_heap_growth;
        Alcotest.test_case "NaN rejected" `Quick test_heap_nan;
        Alcotest.test_case "pop on empty" `Quick test_heap_empty_pop;
        Alcotest.test_case "clear" `Quick test_heap_clear;
        Alcotest.test_case "high-water mark" `Quick test_heap_high_water;
        Alcotest.test_case "zero allocation" `Quick test_heap_zero_alloc;
        Alcotest.test_case "cross-module allocation bound" `Quick
          test_heap_cross_module_alloc_bound;
      ] );
    ( "engine",
      [
        Alcotest.test_case "handler order" `Quick test_engine_order;
        Alcotest.test_case "now advances" `Quick test_engine_now_advances;
        Alcotest.test_case "cascade" `Quick test_engine_cascade;
        Alcotest.test_case "causality" `Quick test_engine_causality;
        Alcotest.test_case "horizon" `Quick test_engine_horizon;
      ] );
    ( "trace",
      [
        Alcotest.test_case "accounting" `Quick test_trace_accounting;
        Alcotest.test_case "bad interval" `Quick test_trace_bad_interval;
        Alcotest.test_case "gantt render" `Quick test_trace_gantt;
      ] );
  ]
