(* Flat-buffer overhaul: Fbuf semantics, strided merge equivalence,
   byte-identity of the flat sort pipelines against array-of-arrays
   references, boundary shapes, and Gc-counter proofs that the
   ratcheted paths really stopped allocating per key. *)

module Fbuf = Kernels.Fbuf
module Merge = Sortlib.Merge
module Rng = Numerics.Rng

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let bits_equal a b =
  Array.length a = Array.length b
  && (let ok = ref true in
      Array.iteri
        (fun i x ->
          if not (Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float b.(i)))
          then ok := false)
        a;
      !ok)

(* --- Fbuf ------------------------------------------------------------- *)

let test_fbuf_create () =
  let b = Fbuf.create 5 in
  checki "length" 5 (Fbuf.length b);
  for i = 0 to 4 do
    Alcotest.(check (float 0.)) "zero-filled" 0. (Fbuf.get b i)
  done;
  checki "empty ok" 0 (Fbuf.length (Fbuf.create 0));
  Alcotest.check_raises "negative length"
    (Invalid_argument "Fbuf.create: negative length") (fun () ->
      ignore (Fbuf.create (-1)))

let test_fbuf_get_set () =
  let b = Fbuf.create 3 in
  Fbuf.set b 1 4.25;
  Alcotest.(check (float 0.)) "roundtrip" 4.25 (Fbuf.get b 1);
  checkb "out of range raises"
    true
    (match Fbuf.get b 3 with
    | _ -> false
    | exception Invalid_argument _ -> true);
  checkb "negative index raises"
    true
    (match Fbuf.set b (-1) 0. with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_fbuf_idx () =
  checki "row-major" 7 (Fbuf.idx ~cols:3 2 1);
  checki "origin" 0 (Fbuf.idx ~cols:9 0 0)

let test_fbuf_roundtrip () =
  let a = [| 1.5; -0.; Float.max_float; 3e-300 |] in
  let b = Fbuf.of_array a in
  checkb "to_array bitwise" true (bits_equal a (Fbuf.to_array b));
  let c = Fbuf.copy b in
  Fbuf.set c 0 99.;
  Alcotest.(check (float 0.)) "copy is independent" 1.5 (Fbuf.get b 0)

let test_fbuf_init () =
  let b = Fbuf.init 4 (fun i -> float_of_int (i * i)) in
  checkb "init values" true (bits_equal [| 0.; 1.; 4.; 9. |] (Fbuf.to_array b))

let test_fbuf_blit () =
  let src = Fbuf.of_array [| 1.; 2.; 3.; 4.; 5. |] in
  let dst = Fbuf.create 5 in
  Fbuf.blit ~src ~src_pos:1 ~dst ~dst_pos:0 ~len:3;
  checkb "plain blit" true
    (bits_equal [| 2.; 3.; 4.; 0.; 0. |] (Fbuf.to_array dst));
  Fbuf.blit ~src ~src_pos:0 ~dst:src ~dst_pos:0 ~len:5;
  checkb "self blit is identity" true
    (bits_equal [| 1.; 2.; 3.; 4.; 5. |] (Fbuf.to_array src));
  (* Overlapping within one buffer, both directions. *)
  let f = Fbuf.of_array [| 1.; 2.; 3.; 4.; 5. |] in
  Fbuf.blit ~src:f ~src_pos:0 ~dst:f ~dst_pos:2 ~len:3;
  checkb "overlap shift right" true
    (bits_equal [| 1.; 2.; 1.; 2.; 3. |] (Fbuf.to_array f));
  let g = Fbuf.of_array [| 1.; 2.; 3.; 4.; 5. |] in
  Fbuf.blit ~src:g ~src_pos:2 ~dst:g ~dst_pos:0 ~len:3;
  checkb "overlap shift left" true
    (bits_equal [| 3.; 4.; 5.; 4.; 5. |] (Fbuf.to_array g));
  Fbuf.blit ~src:g ~src_pos:0 ~dst:g ~dst_pos:5 ~len:0;
  Alcotest.check_raises "range checked"
    (Invalid_argument "Fbuf.blit: range out of bounds") (fun () ->
      Fbuf.blit ~src:g ~src_pos:3 ~dst:g ~dst_pos:0 ~len:3)

let test_fbuf_equal_bitwise () =
  let nan_buf () = Fbuf.of_array [| Float.nan; 1. |] in
  checkb "NaN equals itself" true (Fbuf.equal (nan_buf ()) (nan_buf ()));
  checkb "0. <> -0." false
    (Fbuf.equal (Fbuf.of_array [| 0. |]) (Fbuf.of_array [| -0. |]));
  checkb "length mismatch" false (Fbuf.equal (Fbuf.create 1) (Fbuf.create 2));
  checkb "empty equal" true (Fbuf.equal (Fbuf.create 0) (Fbuf.create 0))

let qcheck_fbuf_roundtrip =
  QCheck.Test.make ~name:"of_array/to_array is bitwise identity" ~count:200
    QCheck.(array_of_size Gen.(int_range 0 80) (float_range (-1e6) 1e6))
    (fun a -> bits_equal a (Fbuf.to_array (Fbuf.of_array a)))

(* --- strided merge ----------------------------------------------------- *)

let test_k_way_strided_matches_k_way () =
  let rng = Rng.create ~seed:71 () in
  let runs =
    List.init 5 (fun i ->
        let r = Array.init ((i * 13) mod 29) (fun _ -> Rng.float rng) in
        Array.sort Float.compare r;
        r)
  in
  (* Lay the runs out contiguously and describe them through a strided
     bounds matrix with a dummy column, as Psrs does. *)
  let src = Array.concat runs in
  let stride = 2 and k = List.length runs in
  let bounds = Array.make (k * stride) 0 in
  let off = ref 0 in
  List.iteri
    (fun i r ->
      bounds.(i * stride) <- !off;
      off := !off + Array.length r;
      bounds.((i * stride) + 1) <- !off)
    runs;
  let dst = Array.make (Array.length src) 0. in
  let mg = Merge.merger ~k in
  let len =
    Merge.k_way_strided mg ~src ~bounds ~runs:k ~stride ~off:0 ~dst ~dst_lo:0
  in
  checki "merged length" (Array.length src) len;
  checkb "matches k_way" true (bits_equal (Merge.k_way runs) dst);
  (* Reusing the merger must not leak state between calls. *)
  let len2 =
    Merge.k_way_strided mg ~src ~bounds ~runs:k ~stride ~off:0 ~dst ~dst_lo:0
  in
  checki "reused merger" len len2;
  checkb "same output" true (bits_equal (Merge.k_way runs) dst)

let test_k_way_strided_edges () =
  let mg = Merge.merger ~k:3 in
  let dst = Array.make 4 nan in
  let len =
    Merge.k_way_strided mg ~src:[||] ~bounds:[| 0; 0; 0; 0; 0; 0 |] ~runs:3
      ~stride:2 ~off:0 ~dst ~dst_lo:0
  in
  checki "all runs empty" 0 len;
  let len =
    Merge.k_way_strided mg ~src:[| 5. |] ~bounds:[| 0; 0; 0; 1; 1; 1 |] ~runs:3
      ~stride:2 ~off:0 ~dst ~dst_lo:2
  in
  checki "single element" 1 len;
  Alcotest.(check (float 0.)) "landed at dst_lo" 5. dst.(2);
  checkb "merger too small raises" true
    (match
       Merge.k_way_strided (Merge.merger ~k:1) ~src:[||] ~bounds:[| 0; 0; 0; 0 |]
         ~runs:2 ~stride:2 ~off:0 ~dst ~dst_lo:0
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* --- byte-identity of the flat pipelines ------------------------------- *)

let reference_sorted keys =
  let r = Array.copy keys in
  Array.sort Float.compare r;
  r

let boundary_shapes p =
  (* n = 0 and 1, n < p, n = p, non-multiples of any block/chunk size,
     plus a larger shape with duplicates. *)
  [ 0; 1; p - 1; p; (7 * p) + 3; 1009 ]

let test_psrs_byte_identical () =
  let rng = Rng.create ~seed:41 () in
  let p = 8 in
  List.iter
    (fun n ->
      let keys = Array.init n (fun i -> if i mod 5 = 0 then 0.5 else Rng.float rng) in
      let result = Sortlib.Psrs.sort keys ~p in
      checkb
        (Printf.sprintf "psrs n=%d" n)
        true
        (bits_equal (reference_sorted keys) result.Sortlib.Psrs.sorted))
    (boundary_shapes p)

let test_histogram_byte_identical () =
  let rng = Rng.create ~seed:42 () in
  let p = 8 in
  List.iter
    (fun n ->
      if n > 0 then begin
        let keys = Array.init n (fun _ -> Rng.float rng) in
        let sorted = Sortlib.Histogram_sort.sort keys ~p in
        checkb
          (Printf.sprintf "histogram n=%d" n)
          true
          (bits_equal (reference_sorted keys) sorted)
      end)
    (boundary_shapes p)

let test_sample_sort_byte_identical () =
  let p = 8 in
  List.iter
    (fun n ->
      let rng = Rng.create ~seed:43 () in
      let keys =
        let r = Rng.create ~seed:44 () in
        Array.init n (fun _ -> Rng.float r)
      in
      let sorted = Sortlib.Sample_sort.sort ~s:4 rng keys ~p in
      checkb
        (Printf.sprintf "sample n=%d" n)
        true
        (bits_equal (reference_sorted keys) sorted))
    (boundary_shapes p)

let test_multicore_byte_identical_across_domains () =
  let keys =
    let r = Rng.create ~seed:45 () in
    Array.init 5000 (fun _ -> Rng.float r)
  in
  let expected = reference_sorted keys in
  List.iter
    (fun domains ->
      let out =
        Sortlib.Multicore.sort ~domains (Rng.create ~seed:46 ()) keys ~p:8
      in
      checkb (Printf.sprintf "%d domains" domains) true (bits_equal expected out))
    [ 1; 2; 4 ]

(* --- allocation ratchet proofs ----------------------------------------- *)

let minor_words_of f =
  ignore (f ());
  (* warm: spans, lazies *)
  let before = Gc.minor_words () in
  ignore (f ());
  Gc.minor_words () -. before

let test_psrs_allocates_o_p2 () =
  let n = 50_000 and p = 16 in
  let keys =
    let r = Rng.create ~seed:47 () in
    Array.init n (fun _ -> Rng.float r)
  in
  let words = minor_words_of (fun () -> Sortlib.Psrs.sort keys ~p) in
  (* The array-of-arrays predecessor spent ~100 words per key here; the
     flat pipeline's auxiliary state is O(p^2), far below n / 4. *)
  checkb
    (Printf.sprintf "psrs minor words %.0f < %d" words (n / 4))
    true
    (words < float_of_int (n / 4))

let test_histogram_splitters_allocate_o_p () =
  let n = 50_000 and p = 16 in
  let keys =
    let r = Rng.create ~seed:48 () in
    Array.init n (fun _ -> Rng.float r)
  in
  let words =
    minor_words_of (fun () -> Sortlib.Histogram_sort.splitters keys ~p)
  in
  checkb
    (Printf.sprintf "splitter minor words %.0f < %d" words (n / 4))
    true
    (words < float_of_int (n / 4))

let test_strided_merge_zero_alloc () =
  let n = 10_000 in
  let k = 8 in
  let src =
    let r = Rng.create ~seed:49 () in
    Array.init n (fun _ -> Rng.float r)
  in
  let stride = 2 in
  let bounds = Array.make (k * stride) 0 in
  let per = n / k in
  for i = 0 to k - 1 do
    bounds.(i * stride) <- i * per;
    bounds.((i * stride) + 1) <- (i + 1) * per;
    Kernels.Seg_sort.sort_floats src ~lo:(i * per) ~len:per
  done;
  let dst = Array.make n 0. in
  let mg = Merge.merger ~k in
  let words =
    minor_words_of (fun () ->
        Merge.k_way_strided mg ~src ~bounds ~runs:k ~stride ~off:0 ~dst ~dst_lo:0)
  in
  checkb
    (Printf.sprintf "merge minor words %.0f < 256" words)
    true (words < 256.)

let suites =
  [
    ( "fbuf",
      [
        Alcotest.test_case "create" `Quick test_fbuf_create;
        Alcotest.test_case "get/set" `Quick test_fbuf_get_set;
        Alcotest.test_case "idx" `Quick test_fbuf_idx;
        Alcotest.test_case "roundtrip" `Quick test_fbuf_roundtrip;
        Alcotest.test_case "init" `Quick test_fbuf_init;
        Alcotest.test_case "blit" `Quick test_fbuf_blit;
        Alcotest.test_case "bitwise equal" `Quick test_fbuf_equal_bitwise;
        QCheck_alcotest.to_alcotest qcheck_fbuf_roundtrip;
      ] );
    ( "flat sort overhaul",
      [
        Alcotest.test_case "strided merge matches k_way" `Quick
          test_k_way_strided_matches_k_way;
        Alcotest.test_case "strided merge edges" `Quick test_k_way_strided_edges;
        Alcotest.test_case "psrs byte-identical" `Quick test_psrs_byte_identical;
        Alcotest.test_case "histogram byte-identical" `Quick
          test_histogram_byte_identical;
        Alcotest.test_case "sample sort byte-identical" `Quick
          test_sample_sort_byte_identical;
        Alcotest.test_case "multicore byte-identical across domains" `Quick
          test_multicore_byte_identical_across_domains;
        Alcotest.test_case "psrs allocates O(p^2)" `Quick test_psrs_allocates_o_p2;
        Alcotest.test_case "histogram splitters allocate O(p)" `Quick
          test_histogram_splitters_allocate_o_p;
        Alcotest.test_case "strided merge zero-alloc" `Quick
          test_strided_merge_zero_alloc;
      ] );
  ]
