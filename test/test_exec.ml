(* Execution layer: the persistent domain pool (Exec.Pool) and the
   deterministic parallel experiment harness built on it. *)

module Pool = Exec.Pool
module Parallel = Numerics.Parallel
module Rng = Numerics.Rng
module Matrix = Linalg.Matrix

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let with_pool ~domains f =
  let pool = Pool.create ~domains () in
  Fun.protect ~finally:(fun () -> Pool.teardown pool) (fun () -> f pool)

let test_pool_covers () =
  with_pool ~domains:4 (fun pool ->
      let n = 1_000 in
      let hits = Array.make n 0 in
      Pool.parallel_for pool n (fun i -> hits.(i) <- hits.(i) + 1);
      checkb "each index exactly once" true (Array.for_all (fun h -> h = 1) hits))

let test_pool_reuse () =
  (* Many submissions through the same workers: the point of persistence. *)
  with_pool ~domains:4 (fun pool ->
      let n = 64 in
      let total = ref 0 in
      for _ = 1 to 200 do
        let hits = Array.make n 0 in
        Pool.parallel_for pool n (fun i -> hits.(i) <- hits.(i) + 1);
        total := !total + Array.fold_left ( + ) 0 hits
      done;
      checki "200 submissions all complete" (200 * n) !total)

let test_pool_uneven_chunks () =
  (* Uneven per-index cost with a tiny chunk: the dynamic scheduler must
     still cover every index exactly once. *)
  with_pool ~domains:3 (fun pool ->
      let n = 101 in
      let hits = Array.make n 0 in
      Pool.parallel_for ~chunk:2 pool n (fun i ->
          if i mod 10 = 0 then ignore (Array.init 10_000 (fun j -> j * j));
          hits.(i) <- hits.(i) + 1);
      checkb "covered" true (Array.for_all (fun h -> h = 1) hits))

let test_pool_single_domain_fallback () =
  (* domains:1 never spawns: every body runs on the calling domain. *)
  let caller = Domain.self () in
  with_pool ~domains:1 (fun pool ->
      let ok = ref true in
      Pool.parallel_for pool 100 (fun _ -> if Domain.self () <> caller then ok := false);
      checkb "all on caller" true !ok);
  let ok = ref true in
  Parallel.parallel_for ~domains:1 100 (fun _ ->
      if Domain.self () <> caller then ok := false);
  checkb "facade domains:1 on caller" true !ok

let test_pool_workers_cap () =
  (* workers:1 on a big pool is the sequential fallback too. *)
  let caller = Domain.self () in
  with_pool ~domains:4 (fun pool ->
      let ok = ref true in
      Pool.parallel_for ~workers:1 pool 100 (fun _ ->
          if Domain.self () <> caller then ok := false);
      checkb "workers:1 stays on caller" true !ok)

exception Boom of int

let test_pool_exception_propagation () =
  with_pool ~domains:4 (fun pool ->
      (match Pool.parallel_for pool 1_000 (fun i -> if i = 617 then raise (Boom i)) with
      | () -> Alcotest.fail "expected exception"
      | exception Boom 617 -> ());
      (* The pool survives a failed submission. *)
      let hits = Array.make 100 0 in
      Pool.parallel_for pool 100 (fun i -> hits.(i) <- hits.(i) + 1);
      checkb "usable after failure" true (Array.for_all (fun h -> h = 1) hits))

let test_pool_nested_safety () =
  with_pool ~domains:4 (fun pool ->
      let n = 8 in
      let inner = Array.make (n * n) 0 in
      Pool.parallel_for pool n (fun i ->
          (* Nested submission on the same pool: must not deadlock. *)
          Pool.parallel_for pool n (fun j ->
              inner.((i * n) + j) <- inner.((i * n) + j) + 1));
      checkb "nested covers" true (Array.for_all (fun h -> h = 1) inner))

let test_pool_teardown_idempotent () =
  let pool = Pool.create ~domains:3 () in
  Pool.teardown pool;
  Pool.teardown pool;
  (* A torn-down pool degrades to sequential execution. *)
  let hits = Array.make 50 0 in
  Pool.parallel_for pool 50 (fun i -> hits.(i) <- hits.(i) + 1);
  checkb "sequential after teardown" true (Array.for_all (fun h -> h = 1) hits)

let test_pool_ensure_grows () =
  let pool = Pool.create ~domains:2 () in
  Fun.protect
    ~finally:(fun () -> Pool.teardown pool)
    (fun () ->
      checki "initial size" 2 (Pool.size pool);
      Pool.ensure pool ~domains:4;
      checki "grown size" 4 (Pool.size pool);
      let hits = Array.make 200 0 in
      Pool.parallel_for pool 200 (fun i -> hits.(i) <- hits.(i) + 1);
      checkb "covers after growth" true (Array.for_all (fun h -> h = 1) hits))

let test_pool_stats_consistent () =
  (* Counter consistency at forced domain counts (the host may expose a
     single CPU, so never detect).  Chunk geometry depends only on n,
     so the chunks claimed across all slots must equal the chunk count
     of each submission, whatever the domain count. *)
  let n = 1_000 and submissions = 5 in
  List.iter
    (fun domains ->
      with_pool ~domains (fun pool ->
          let s0 = Pool.stats pool in
          checki "fresh pool: no submissions" 0 s0.Pool.submissions;
          checki "stats slot per domain" domains (Array.length s0.Pool.per_domain);
          for _ = 1 to submissions do
            Pool.parallel_for ~chunk:16 pool n (fun _ -> ())
          done;
          let s = Pool.stats pool in
          checki "domains" domains s.Pool.domains;
          let chunk_count = (n + 15) / 16 in
          if domains = 1 then begin
            (* Sequential fallback: counted as such, never as parallel. *)
            checki "sequential runs" submissions s.Pool.sequential_runs;
            checki "no parallel submissions" 0 s.Pool.submissions
          end
          else begin
            checki "parallel submissions" submissions s.Pool.submissions;
            checki "no sequential runs" 0 s.Pool.sequential_runs;
            checki "nested runs" 0 s.Pool.nested_runs;
            let total_chunks =
              Array.fold_left (fun acc w -> acc + w.Pool.chunks) 0 s.Pool.per_domain
            in
            checki "chunks conserved" (submissions * chunk_count) total_chunks;
            checkb "submitter busy time counted" true
              (s.Pool.per_domain.(0).Pool.busy_ns > 0);
            checki "submitter task count" submissions s.Pool.per_domain.(0).Pool.tasks
          end))
    [ 1; 2; 3 ]

let test_pool_stats_nested_and_ensure () =
  with_pool ~domains:2 (fun pool ->
      Pool.parallel_for pool 8 (fun _ ->
          (* Nested submission: sequential on the calling domain. *)
          Pool.parallel_for pool 4 (fun _ -> ()));
      let s = Pool.stats pool in
      checki "outer submission parallel" 1 s.Pool.submissions;
      checki "nested counted" s.Pool.nested_runs s.Pool.sequential_runs;
      checkb "nested happened" true (s.Pool.nested_runs >= 1);
      (* ensure appends zeroed slots and preserves the existing ones. *)
      let before = Array.map (fun w -> w.Pool.chunks) s.Pool.per_domain in
      Pool.ensure pool ~domains:3;
      let s' = Pool.stats pool in
      checki "slot appended" 3 (Array.length s'.Pool.per_domain);
      checkb "existing counters preserved" true
        (Array.sub (Array.map (fun w -> w.Pool.chunks) s'.Pool.per_domain) 0 2 = before);
      checki "new slot zeroed" 0 s'.Pool.per_domain.(2).Pool.chunks)

let test_parallel_reduce_sum () =
  with_pool ~domains:4 (fun pool ->
      let n = 10_000 in
      let total =
        Pool.parallel_reduce pool ~init:0 ~map:(fun i -> i) ~combine:( + ) n
      in
      checki "sum 0..n-1" (n * (n - 1) / 2) total)

let test_parallel_reduce_deterministic () =
  (* Float summation: chunk geometry depends only on n, so the rounding
     is identical at any worker count. *)
  let n = 4_097 in
  let map i = sin (float_of_int i) *. 1e-3 in
  let run workers =
    with_pool ~domains:4 (fun pool ->
        Pool.parallel_reduce ~workers pool ~init:0. ~map ~combine:( +. ) n)
  in
  Alcotest.(check (float 0.)) "bit-identical across worker counts" (run 1) (run 4)

let test_parallel_reduce_facade () =
  let n = 1_000 in
  let total =
    Parallel.parallel_reduce ~domains:2 ~init:0 ~map:(fun i -> 2 * i) ~combine:( + ) n
  in
  checki "facade reduce" (n * (n - 1)) total

let test_facade_determinism_sort () =
  let rng = Rng.create ~seed:2024 () in
  let keys = Array.init 20_000 (fun _ -> Rng.float rng) in
  let run domains = Sortlib.Multicore.sort ~domains (Rng.create ~seed:7 ()) keys ~p:8 in
  Alcotest.(check (array (float 0.))) "pool sort = sequential sort" (run 1) (run 4)

let test_facade_determinism_matmul () =
  let rng = Rng.create ~seed:2025 () in
  let a = Matrix.random rng ~rows:33 ~cols:29 in
  let b = Matrix.random rng ~rows:29 ~cols:31 in
  let seq = Linalg.Parallel_matmul.multiply ~domains:1 a b in
  let par = Linalg.Parallel_matmul.multiply ~domains:4 a b in
  (* Per-row bodies run the same sequential inner loops, so the results
     are bitwise identical, not just approximately equal. *)
  checkb "bitwise identical rows" true (Matrix.max_abs_diff seq par = 0.)

let test_fig4_point_deterministic () =
  let sweep domains =
    Experiments.Fig4.csv
      (Experiments.Fig4.sweep ~processor_counts:[ 10 ] ~trials:6 ~domains
         Platform.Profiles.paper_uniform)
  in
  checkb "fig4 csv identical across domain counts" true (sweep 1 = sweep 4)

let test_experiments_deterministic () =
  let general domains = Experiments.Ratio_exp.run_general ~trials:4 ~domains () in
  checkb "ratio_exp identical" true (general 1 = general 4);
  let time domains =
    Experiments.Time_exp.run ~p:8 ~trials:3 ~bandwidths:[ 10.; 1. ] ~domains
      Platform.Profiles.paper_uniform
  in
  checkb "time_exp identical" true (time 1 = time 4);
  let mr domains =
    Experiments.Mapreduce_exp.run ~n:64 ~chunk:8 ~processor_counts:[ 4 ] ~trials:2
      ~domains ()
  in
  checkb "mapreduce_exp identical" true (mr 1 = mr 4)

let suites =
  [
    ( "exec pool",
      [
        Alcotest.test_case "covers all indices" `Quick test_pool_covers;
        Alcotest.test_case "reuse across submissions" `Quick test_pool_reuse;
        Alcotest.test_case "uneven chunks" `Quick test_pool_uneven_chunks;
        Alcotest.test_case "domains:1 fallback" `Quick test_pool_single_domain_fallback;
        Alcotest.test_case "workers cap" `Quick test_pool_workers_cap;
        Alcotest.test_case "exception propagation" `Quick test_pool_exception_propagation;
        Alcotest.test_case "nested call safety" `Quick test_pool_nested_safety;
        Alcotest.test_case "teardown idempotent" `Quick test_pool_teardown_idempotent;
        Alcotest.test_case "ensure grows" `Quick test_pool_ensure_grows;
        Alcotest.test_case "stats consistent at 1/2/3 domains" `Quick
          test_pool_stats_consistent;
        Alcotest.test_case "stats: nested and ensure" `Quick
          test_pool_stats_nested_and_ensure;
        Alcotest.test_case "reduce sum" `Quick test_parallel_reduce_sum;
        Alcotest.test_case "reduce deterministic" `Quick test_parallel_reduce_deterministic;
        Alcotest.test_case "reduce facade" `Quick test_parallel_reduce_facade;
      ] );
    ( "exec determinism",
      [
        Alcotest.test_case "multicore sort" `Quick test_facade_determinism_sort;
        Alcotest.test_case "parallel matmul" `Quick test_facade_determinism_matmul;
        Alcotest.test_case "fig4 point" `Quick test_fig4_point_deterministic;
        Alcotest.test_case "ratio/time/mapreduce" `Quick test_experiments_deterministic;
      ] );
  ]
