(* Observability layer: JSON round-trips, span tracing invariants,
   per-domain metric sharding, the Chrome exporters, and the
   disabled-mode zero-allocation contract.

   The tracing/metrics flags are process-global, so every test that
   enables them restores the disabled default before returning —
   including on failure — to keep the rest of the run untouched. *)

module Json = Obs.Json
module Metrics = Obs.Metrics
module Trace = Obs.Trace
module Export = Obs.Export
module Hist = Obs.Hist
module Sample = Obs.Sample

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let with_tracing f =
  Trace.clear ();
  Trace.set_enabled true;
  Fun.protect ~finally:(fun () -> Trace.set_enabled false) f

let with_metrics f =
  Metrics.reset ();
  Metrics.set_enabled true;
  Fun.protect ~finally:(fun () -> Metrics.set_enabled false) f

let parse_exn s =
  match Json.of_string s with
  | Ok v -> v
  | Error msg -> Alcotest.failf "JSON parse error: %s" msg

(* --- Json -------------------------------------------------------------- *)

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("null", Json.Null);
        ("flag", Json.Bool true);
        ("count", Json.Int (-42));
        ("ratio", Json.Float 1.5);
        ("text", Json.String "line\n\"quoted\"\ttab");
        ("items", Json.List [ Json.Int 1; Json.Float 2.25; Json.String "x" ]);
        ("empty_list", Json.List []);
        ("empty_obj", Json.Obj []);
      ]
  in
  checkb "round-trips" true (parse_exn (Json.to_string doc) = doc)

let test_json_member () =
  let doc = parse_exn {|{"a": {"b": 7}, "c": [1, 2]}|} in
  (match Json.member "a" doc with
  | Some inner -> checkb "nested member" true (Json.member "b" inner = Some (Json.Int 7))
  | None -> Alcotest.fail "member a missing");
  checkb "missing key" true (Json.member "zzz" doc = None);
  checkb "non-object" true (Json.member "a" (Json.Int 3) = None)

let test_json_rejects_garbage () =
  let bad = [ ""; "{"; "[1,]"; "{\"a\" 1}"; "tru"; "\"unterminated"; "1 2" ] in
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok _ -> Alcotest.failf "accepted malformed input %S" s
      | Error _ -> ())
    bad

(* --- Trace ------------------------------------------------------------- *)

let test_trace_disabled_records_nothing () =
  Trace.clear ();
  Trace.begin_span "ghost";
  Trace.end_span "ghost";
  Trace.instant "ghost";
  checki "no events while disabled" 0 (List.length (Trace.events ()))

let test_trace_balanced_and_monotonic () =
  with_tracing (fun () ->
      for _ = 1 to 50 do
        Trace.begin_span "outer";
        Trace.begin_span "inner";
        Trace.instant "tick";
        Trace.end_span "inner";
        Trace.end_span "outer"
      done);
  let evs = Trace.events () in
  checki "5 events per iteration" 250 (List.length evs);
  let begins =
    List.length (List.filter (fun (e : Trace.event) -> e.kind = Trace.Begin) evs)
  in
  let ends =
    List.length (List.filter (fun (e : Trace.event) -> e.kind = Trace.End) evs)
  in
  checki "balanced begin/end" begins ends;
  let sorted = ref true in
  let _ =
    List.fold_left
      (fun prev (e : Trace.event) ->
        if e.ts_ns < prev then sorted := false;
        e.ts_ns)
      min_int evs
  in
  checkb "timestamps monotone" true !sorted;
  checki "nothing dropped" 0 (Trace.dropped ());
  Trace.clear ();
  checki "clear empties buffers" 0 (List.length (Trace.events ()))

let test_trace_with_span_on_exception () =
  with_tracing (fun () ->
      (try Trace.with_span "failing" (fun () -> failwith "boom")
       with Failure _ -> ());
      let evs = Trace.events () in
      checki "begin and end both present" 2 (List.length evs))

let test_trace_ring_wraps_not_grows () =
  (* Overfill one domain's ring: old events are overwritten, the
     collection never exceeds the capacity, and the loss is counted. *)
  with_tracing (fun () ->
      for _ = 1 to 20_000 do
        Trace.instant "spin"
      done);
  let kept = List.length (Trace.events ()) in
  checki "capacity-bounded" 16384 kept;
  checkb "drop counter saw the rest" true (Trace.dropped () >= 20_000 - 16384);
  Trace.clear ()

(* --- Metrics ----------------------------------------------------------- *)

let test_metrics_disabled_noop () =
  Metrics.reset ();
  let c = Metrics.counter "obs_test.noop" in
  Metrics.incr_counter c;
  Metrics.add c 41;
  let snap = Metrics.snapshot () in
  checkb "stays zero while disabled" true
    (Metrics.counter_value snap "obs_test.noop" = Some 0)

let test_metrics_counter_and_histogram () =
  let c = Metrics.counter "obs_test.events" in
  let h = Metrics.histogram "obs_test.latency" ~bounds:[| 10.; 100.; 1000. |] in
  with_metrics (fun () ->
      for i = 1 to 100 do
        Metrics.incr_counter c;
        Metrics.observe_int h i
      done);
  let snap = Metrics.snapshot () in
  checkb "counter sums" true (Metrics.counter_value snap "obs_test.events" = Some 100);
  match List.assoc_opt "obs_test.latency" snap.Metrics.histograms with
  | None -> Alcotest.fail "histogram missing from snapshot"
  | Some hs ->
      checki "total observations" 100 hs.Metrics.total;
      (* 1..9 | 10..99 | 100 | - *)
      checkb "bucketed correctly" true (hs.Metrics.buckets = [| 9; 90; 1; 0 |])

let test_metrics_registration_idempotent () =
  let a = Metrics.counter "obs_test.same" in
  let b = Metrics.counter "obs_test.same" in
  with_metrics (fun () ->
      Metrics.incr_counter a;
      Metrics.incr_counter b);
  let snap = Metrics.snapshot () in
  checkb "one counter, two handles" true
    (Metrics.counter_value snap "obs_test.same" = Some 2);
  checki "registered once" 1
    (List.length
       (List.filter (fun (n, _) -> n = "obs_test.same") snap.Metrics.counters))

let test_metrics_sharded_merge_matches_sequential () =
  (* The per-domain shards must merge to exactly the sequential count,
     whatever the domain count.  The host may have one CPU, so the
     domain counts are forced, not detected. *)
  let c = Metrics.counter "obs_test.sharded" in
  let n = 10_000 in
  List.iter
    (fun domains ->
      Metrics.reset ();
      let pool = Exec.Pool.create ~domains () in
      Fun.protect
        ~finally:(fun () -> Exec.Pool.teardown pool)
        (fun () ->
          with_metrics (fun () ->
              Exec.Pool.parallel_for pool n (fun _ -> Metrics.incr_counter c)));
      let snap = Metrics.snapshot () in
      checkb
        (Printf.sprintf "merge equals sequential at %d domains" domains)
        true
        (Metrics.counter_value snap "obs_test.sharded" = Some n))
    [ 1; 2; 3 ]

(* --- disabled-mode allocation contract --------------------------------- *)

let minor_words_of f =
  Gc.full_major ();
  let before = Gc.minor_words () in
  f ();
  Gc.minor_words () -. before

let test_disabled_zero_allocation () =
  Trace.set_enabled false;
  Metrics.set_enabled false;
  let c = Metrics.counter "obs_test.alloc" in
  let h = Metrics.histogram "obs_test.alloc_h" ~bounds:[| 1.; 2. |] in
  (* Warm-up: DLS shards, ring buffers and any lazy setup. *)
  Trace.begin_span "warm";
  Trace.end_span "warm";
  Metrics.incr_counter c;
  Metrics.observe_int h 1;
  let words =
    minor_words_of (fun () ->
        for i = 1 to 10_000 do
          Trace.begin_span "hot";
          Trace.instant "hot";
          Trace.end_span "hot";
          Metrics.incr_counter c;
          Metrics.add c 2;
          Metrics.observe_int h i
        done)
  in
  checkb
    (Printf.sprintf "disabled path allocates nothing (%.0f minor words)" words)
    true (words = 0.)

let test_enabled_recording_allocation_free () =
  (* Enabled-mode span recording is also allocation-free: preallocated
     rings, literal names stored by reference, noalloc clock. *)
  with_tracing (fun () ->
      Trace.begin_span "warm";
      Trace.end_span "warm";
      let words =
        minor_words_of (fun () ->
            for _ = 1 to 10_000 do
              Trace.begin_span "hot";
              Trace.end_span "hot"
            done)
      in
      checkb
        (Printf.sprintf "enabled spans allocate nothing (%.0f minor words)" words)
        true (words = 0.));
  Trace.clear ()

(* --- exporters --------------------------------------------------------- *)

let test_export_trace_json_valid () =
  with_tracing (fun () ->
      Trace.begin_span "phase_a";
      Trace.instant "marker";
      Trace.end_span "phase_a");
  let doc = parse_exn (Json.to_string (Export.trace_json ())) in
  Trace.clear ();
  match doc with
  | Json.List events ->
      checkb "has events" true (List.length events >= 5);
      (* process_name + at least one thread_name metadata, then B/i/E. *)
      let phases =
        List.filter_map
          (fun e ->
            match Json.member "ph" e with Some (Json.String p) -> Some p | _ -> None)
          events
      in
      checki "every event has a phase" (List.length events) (List.length phases);
      checkb "metadata present" true (List.mem "M" phases);
      checkb "duration events present" true (List.mem "B" phases && List.mem "E" phases);
      checkb "instant present" true (List.mem "i" phases);
      List.iter
        (fun e ->
          (match Json.member "ts" e with
          | Some (Json.Float ts) -> checkb "ts rebased near zero" true (ts >= 0.)
          | Some (Json.Int ts) -> checkb "ts rebased near zero" true (ts >= 0)
          | None -> (* metadata events carry no ts *) ()
          | Some _ -> Alcotest.fail "ts has a non-numeric type");
          checkb "pid constant" true (Json.member "pid" e = Some (Json.Int 1)))
        events
  | _ -> Alcotest.fail "trace is not a top-level JSON array"

let test_export_metrics_json () =
  let c = Metrics.counter "obs_test.export" in
  with_metrics (fun () -> Metrics.add c 5);
  let doc = parse_exn (Json.to_string (Export.metrics_json ())) in
  match Json.member "counters" doc with
  | Some counters ->
      checkb "exported counter value" true
        (Json.member "obs_test.export" counters = Some (Json.Int 5))
  | None -> Alcotest.fail "no counters object"

let test_des_trace_bridge () =
  let t = Des.Trace.create () in
  Des.Trace.record t ~resource:"w0" ~start:0. ~finish:1.5 ~label:"compute";
  Des.Trace.record t ~resource:"w1" ~start:0.5 ~finish:2. ~label:"";
  let doc = parse_exn (Json.to_string (Des.Trace.to_chrome t)) in
  match doc with
  | Json.List events ->
      (* 1 trace_stats + 1 process_name + 2 thread_name + 2 complete events. *)
      checki "event count" 6 (List.length events);
      (match
         List.find_opt
           (fun e -> Json.member "name" e = Some (Json.String "trace_stats"))
           events
       with
      | None -> Alcotest.fail "no trace_stats metadata event"
      | Some stats -> (
          match Json.member "args" stats with
          | Some args ->
              checkb "recorded count" true
                (Json.member "recorded" args = Some (Json.Int 2));
              checkb "nothing sampled out" true
                (Json.member "sampled_out" args = Some (Json.Int 0))
          | None -> Alcotest.fail "trace_stats has no args"));
      let completes =
        List.filter (fun e -> Json.member "ph" e = Some (Json.String "X")) events
      in
      checki "one X event per interval" 2 (List.length completes);
      checkb "unlabeled interval falls back to the resource name" true
        (List.exists (fun e -> Json.member "name" e = Some (Json.String "w1")) completes);
      checkb "duration in microseconds" true
        (List.exists
           (fun e -> Json.member "dur" e = Some (Json.Float 1.5e6))
           completes)
  | _ -> Alcotest.fail "bridge output is not a JSON array"

(* --- Hist: log2/HDR histograms ----------------------------------------- *)

let with_hists f =
  Hist.reset ();
  Hist.set_enabled true;
  Fun.protect ~finally:(fun () -> Hist.set_enabled false) f

let test_hist_bucket_geometry () =
  (* Every probe value lands in a bucket that contains it; values below
     32 are counted exactly; larger buckets are never wider than 1/32
     of their lower bound (the quantile error bound). *)
  let probes =
    List.init 2048 (fun i -> i)
    @ List.concat_map
        (fun e ->
          let p = 1 lsl e in
          [ p - 1; p; p + 1 ])
        (List.init 57 (fun i -> i + 5))
    @ [ max_int - 1; max_int ]
  in
  List.iter
    (fun v ->
      let b = Hist.bucket_of v in
      checkb "index in range" true (b >= 0 && b < Hist.n_buckets);
      let lo = Hist.bucket_lo b and hi = Hist.bucket_hi b in
      checkb (Printf.sprintf "bucket contains %d" v) true (lo <= v && v <= hi);
      if v < 32 then checkb "small values exact" true (lo = v && hi = v)
      else checkb (Printf.sprintf "width bound at %d" v) true ((hi - lo) * 32 <= lo))
    probes;
  (* Buckets tile the axis: consecutive indices meet with no gap. *)
  for b = 0 to 300 do
    checki "buckets contiguous" (Hist.bucket_hi b + 1) (Hist.bucket_lo (b + 1))
  done

let test_hist_summary_exact_stats () =
  let h = Hist.create "obs_test.hist_stats" in
  with_hists (fun () ->
      List.iter (Hist.record h) [ 0; 1; 31; 32; 1000; 123_456_789 ];
      Hist.record h (-5) (* clamps to 0 *));
  let s = Hist.snapshot_one h in
  checki "count" 7 s.Hist.count;
  checki "sum (negative clamped)" 123_457_853 s.Hist.sum;
  checki "tracked min" 0 s.Hist.min_v;
  checki "tracked max" 123_456_789 s.Hist.max_v;
  checki "q=0 is exact min" 0 (Hist.quantile s 0.);
  checki "q=1 is exact max" 123_456_789 (Hist.quantile s 1.)

let test_hist_disabled_records_nothing () =
  Hist.reset ();
  Hist.set_enabled false;
  let h = Hist.create "obs_test.hist_off" in
  Hist.record h 7;
  Hist.record_s h 1.0;
  checki "stays empty while disabled" 0 (Hist.snapshot_one h).Hist.count

let qcheck_hist_quantile_error_bound =
  QCheck.Test.make ~name:"quantile within one bucket width of exact" ~count:60
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 400) (int_bound 1_000_000_000))
        (float_range 0.01 0.99))
    (fun (samples, q) ->
      let h = Hist.create "obs_test.hist_q" in
      Hist.reset ();
      Hist.set_enabled true;
      Fun.protect
        ~finally:(fun () -> Hist.set_enabled false)
        (fun () ->
          List.iter (Hist.record h) samples;
          let s = Hist.snapshot_one h in
          let sorted = List.sort compare samples in
          let n = List.length sorted in
          let rank =
            max 1 (int_of_float (Float.round (ceil (q *. float_of_int n))))
          in
          let exact = List.nth sorted (rank - 1) in
          let est = Hist.quantile s q in
          (* Never below the true sample; overshoot bounded by one
             bucket width, i.e. exact/32 (+1 for integer rounding). *)
          exact <= est && est <= exact + (exact / 32) + 1))

let test_hist_sharded_merge_matches_sequential () =
  let h = Hist.create "obs_test.hist_sharded" in
  let n = 10_000 in
  List.iter
    (fun domains ->
      Hist.reset ();
      let pool = Exec.Pool.create ~domains () in
      Fun.protect
        ~finally:(fun () -> Exec.Pool.teardown pool)
        (fun () ->
          with_hists (fun () ->
              Exec.Pool.parallel_for pool n (fun i -> Hist.record h (i land 255))));
      let s = Hist.snapshot_one h in
      checkb
        (Printf.sprintf "merge equals sequential at %d domains" domains)
        true
        (s.Hist.count = n
        && s.Hist.max_v = 255
        && Array.fold_left ( + ) 0 s.Hist.counts = n))
    [ 1; 2; 3 ]

let test_hist_recording_allocation_free () =
  (* Both the gated [record] and the hoisted-shard [record_into] paths
     must allocate nothing once the domain's shard exists. *)
  let h = Hist.create "obs_test.hist_alloc" in
  with_hists (fun () ->
      Hist.record h 1 (* warm-up: creates this domain's shard *);
      let sh = Hist.shard h in
      let words =
        minor_words_of (fun () ->
            for i = 1 to 10_000 do
              Hist.record h i;
              Hist.record_into sh (i * 977)
            done)
      in
      checkb
        (Printf.sprintf "enabled hist records allocate nothing (%.0f minor words)"
           words)
        true (words = 0.));
  Hist.reset ()

(* --- Sample: deterministic every-k and reservoir ------------------------ *)

let test_sample_every () =
  let s = Sample.every 3 in
  let kept =
    List.filteri (fun _ _ -> Sample.keep s) (List.init 10 (fun i -> i))
  in
  checkb "keeps 0,3,6,9" true (kept = [ 0; 3; 6; 9 ]);
  checki "seen accounting" 10 (Sample.seen s);
  checki "kept accounting" 4 (Sample.kept s);
  let all = Sample.every 1 in
  let kept_all = List.filter (fun _ -> Sample.keep all) (List.init 5 (fun i -> i)) in
  checki "every 1 keeps everything" 5 (List.length kept_all);
  checkb "k < 1 rejected" true
    (match Sample.every 0 with exception Invalid_argument _ -> true | _ -> false)

let test_sample_reservoir_deterministic () =
  let fill seed =
    let r = Sample.reservoir ~seed ~capacity:16 in
    for i = 0 to 999 do
      Sample.offer r i
    done;
    (Sample.contents r, Sample.reservoir_seen r, Sample.reservoir_kept r)
  in
  let c1, seen1, kept1 = fill 7 in
  let c2, _, _ = fill 7 in
  checkb "same seed, same sample" true (c1 = c2);
  checki "seen accounting" 1000 seen1;
  checki "capacity bounds kept" 16 kept1;
  checki "contents match kept" 16 (List.length c1);
  let small = Sample.reservoir ~seed:7 ~capacity:16 in
  List.iter (Sample.offer small) [ 1; 2; 3 ];
  checkb "under capacity keeps everything" true
    (List.sort compare (Sample.contents small) = [ 1; 2; 3 ])

(* --- bounded export accounting ----------------------------------------- *)

let test_export_budget_and_stats () =
  with_tracing (fun () ->
      for _ = 1 to 100 do
        Trace.instant "spin"
      done);
  let doc = parse_exn (Json.to_string (Export.trace_json ~max_events:20 ())) in
  Trace.clear ();
  match doc with
  | Json.List events ->
      let stats =
        match
          List.find_opt
            (fun e -> Json.member "name" e = Some (Json.String "trace_stats"))
            events
        with
        | Some s -> Option.get (Json.member "args" s)
        | None -> Alcotest.fail "no trace_stats event"
      in
      let arg k =
        match Json.member k stats with
        | Some (Json.Int i) -> i
        | _ -> Alcotest.failf "trace_stats missing %s" k
      in
      checki "recorded" 100 (arg "recorded");
      checki "sample_every = ceil(100/20)" 5 (arg "sample_every");
      checki "emitted" 20 (arg "emitted");
      checki "sampled_out" 80 (arg "sampled_out");
      checki "nothing ring-dropped" 0 (arg "dropped");
      let body =
        List.filter (fun e -> Json.member "ph" e = Some (Json.String "i")) events
      in
      checki "body fits the budget" 20 (List.length body)
  | _ -> Alcotest.fail "trace is not a JSON array"

let test_export_metrics_hists_and_trace_sections () =
  let h = Hist.create "obs_test.hist_export" in
  with_hists (fun () ->
      with_tracing (fun () ->
          Trace.instant "blip";
          for i = 1 to 100 do
            Hist.record h i
          done;
          let doc = parse_exn (Json.to_string (Export.metrics_json ())) in
          (match Json.member "hists" doc with
          | Some hists -> (
              match Json.member "obs_test.hist_export" hists with
              | Some hj ->
                  checkb "count exported" true
                    (Json.member "count" hj = Some (Json.Int 100));
                  checkb "quantiles present" true (Json.member "quantiles" hj <> None);
                  (match Json.member "buckets" hj with
                  | Some (Json.List bs) ->
                      checkb "only non-zero buckets exported" true
                        (List.length bs > 0 && List.length bs < 110)
                  | _ -> Alcotest.fail "hist buckets missing")
              | None -> Alcotest.fail "registered hist missing from hists")
          | None -> Alcotest.fail "no hists section");
          match Json.member "trace" doc with
          | Some tr ->
              checkb "trace recorded count" true
                (match Json.member "recorded" tr with
                | Some (Json.Int n) -> n >= 1
                | _ -> false);
              checkb "per-domain drops surfaced" true
                (Json.member "dropped_per_domain" tr <> None)
          | None -> Alcotest.fail "no trace section"));
  Trace.clear ();
  Hist.reset ()

(* --- DES / MapReduce instrumentation ------------------------------------ *)

let test_scheduler_instrumentation_counts () =
  Metrics.reset ();
  Hist.reset ();
  Metrics.set_enabled true;
  Hist.set_enabled true;
  let result, _ =
    Fun.protect
      ~finally:(fun () ->
        Metrics.set_enabled false;
        Hist.set_enabled false)
      (fun () -> Experiments.Mrsim_exp.run ~workers:50 ~tasks:200 ())
  in
  let snap = Metrics.snapshot () in
  let counter name =
    match Metrics.counter_value snap name with
    | Some v -> v
    | None -> Alcotest.failf "counter %s missing" name
  in
  let by_tag =
    List.map counter
      [
        "mapreduce.events.free";
        "mapreduce.events.done";
        "mapreduce.events.crash";
        "mapreduce.events.recover";
        "mapreduce.events.retry";
      ]
  in
  checki "per-type counts sum to events_processed"
    result.Experiments.Mrsim_exp.events
    (List.fold_left ( + ) 0 by_tag);
  checkb "completions dominate" true (counter "mapreduce.events.done" >= 200);
  let hist_count name =
    match
      List.find_opt (fun (s : Hist.summary) -> s.Hist.s_name = name) (Hist.snapshot ())
    with
    | Some s -> s.Hist.count
    | None -> Alcotest.failf "hist %s missing" name
  in
  checkb "service latency per completed task" true
    (hist_count "mapreduce.task_service_s" >= 200);
  checkb "wait latency per dispatch" true (hist_count "mapreduce.task_wait_s" >= 200);
  checkb "heap depth sampled" true (hist_count "mapreduce.heap_size" > 0);
  (match List.assoc_opt "mapreduce.heap_hwm" snap.Metrics.gauges with
  | Some v -> checkb "heap high-water gauge set" true (v > 0.)
  | None -> Alcotest.fail "heap_hwm gauge missing");
  Metrics.reset ();
  Hist.reset ()

let test_timeline_sampling_domain_independent () =
  (* The downsampled sim-time Gantt must be a pure function of the
     seeded simulation: running the producing trial inside pools of
     1, 2 and 4 domains (instrumentation enabled) yields byte-identical
     exports. *)
  let timeline_at domains =
    let pool = Exec.Pool.create ~domains () in
    Fun.protect
      ~finally:(fun () -> Exec.Pool.teardown pool)
      (fun () ->
        let out = Array.make 1 "" in
        Metrics.reset ();
        Hist.reset ();
        Metrics.set_enabled true;
        Hist.set_enabled true;
        Fun.protect
          ~finally:(fun () ->
            Metrics.set_enabled false;
            Hist.set_enabled false)
          (fun () ->
            Exec.Pool.parallel_for pool 1 (fun _ ->
                let _, outcome =
                  Experiments.Mrsim_exp.run ~workers:40 ~tasks:160 ()
                in
                out.(0) <-
                  Json.to_string (Mapreduce.Timeline.chrome ~max_events:64 outcome)));
        out.(0))
  in
  let t1 = timeline_at 1 in
  let t2 = timeline_at 2 in
  let t4 = timeline_at 4 in
  checkb "sampled timeline is downsampled" true
    (match parse_exn t1 with
    | Json.List evs ->
        List.exists
          (fun e -> Json.member "name" e = Some (Json.String "trace_stats"))
          evs
    | _ -> false);
  checkb "1 = 2 domains" true (String.equal t1 t2);
  checkb "2 = 4 domains" true (String.equal t2 t4)

let suites =
  [
    ( "obs json",
      [
        Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
        Alcotest.test_case "member access" `Quick test_json_member;
        Alcotest.test_case "rejects malformed" `Quick test_json_rejects_garbage;
      ] );
    ( "obs trace",
      [
        Alcotest.test_case "disabled records nothing" `Quick
          test_trace_disabled_records_nothing;
        Alcotest.test_case "balanced and monotonic" `Quick
          test_trace_balanced_and_monotonic;
        Alcotest.test_case "with_span on exception" `Quick
          test_trace_with_span_on_exception;
        Alcotest.test_case "ring wraps, never grows" `Quick
          test_trace_ring_wraps_not_grows;
      ] );
    ( "obs metrics",
      [
        Alcotest.test_case "disabled no-op" `Quick test_metrics_disabled_noop;
        Alcotest.test_case "counter and histogram" `Quick
          test_metrics_counter_and_histogram;
        Alcotest.test_case "registration idempotent" `Quick
          test_metrics_registration_idempotent;
        Alcotest.test_case "sharded merge = sequential" `Quick
          test_metrics_sharded_merge_matches_sequential;
      ] );
    ( "obs allocation",
      [
        Alcotest.test_case "disabled path allocates zero" `Quick
          test_disabled_zero_allocation;
        Alcotest.test_case "enabled spans allocate zero" `Quick
          test_enabled_recording_allocation_free;
      ] );
    ( "obs hist",
      [
        Alcotest.test_case "bucket geometry" `Quick test_hist_bucket_geometry;
        Alcotest.test_case "exact count/sum/min/max" `Quick
          test_hist_summary_exact_stats;
        Alcotest.test_case "disabled no-op" `Quick test_hist_disabled_records_nothing;
        QCheck_alcotest.to_alcotest qcheck_hist_quantile_error_bound;
        Alcotest.test_case "sharded merge = sequential" `Quick
          test_hist_sharded_merge_matches_sequential;
        Alcotest.test_case "enabled records allocate zero" `Quick
          test_hist_recording_allocation_free;
      ] );
    ( "obs sample",
      [
        Alcotest.test_case "every-k systematic" `Quick test_sample_every;
        Alcotest.test_case "reservoir deterministic" `Quick
          test_sample_reservoir_deterministic;
      ] );
    ( "obs export",
      [
        Alcotest.test_case "trace-event JSON valid" `Quick test_export_trace_json_valid;
        Alcotest.test_case "metrics JSON" `Quick test_export_metrics_json;
        Alcotest.test_case "Des.Trace bridge" `Quick test_des_trace_bridge;
        Alcotest.test_case "budget sampling accounted" `Quick
          test_export_budget_and_stats;
        Alcotest.test_case "hists and trace sections" `Quick
          test_export_metrics_hists_and_trace_sections;
      ] );
    ( "obs instrumentation",
      [
        Alcotest.test_case "scheduler event counts" `Quick
          test_scheduler_instrumentation_counts;
        Alcotest.test_case "timeline domain-independent" `Quick
          test_timeline_sampling_domain_independent;
      ] );
  ]
