(* Observability layer: JSON round-trips, span tracing invariants,
   per-domain metric sharding, the Chrome exporters, and the
   disabled-mode zero-allocation contract.

   The tracing/metrics flags are process-global, so every test that
   enables them restores the disabled default before returning —
   including on failure — to keep the rest of the run untouched. *)

module Json = Obs.Json
module Metrics = Obs.Metrics
module Trace = Obs.Trace
module Export = Obs.Export

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let with_tracing f =
  Trace.clear ();
  Trace.set_enabled true;
  Fun.protect ~finally:(fun () -> Trace.set_enabled false) f

let with_metrics f =
  Metrics.reset ();
  Metrics.set_enabled true;
  Fun.protect ~finally:(fun () -> Metrics.set_enabled false) f

let parse_exn s =
  match Json.of_string s with
  | Ok v -> v
  | Error msg -> Alcotest.failf "JSON parse error: %s" msg

(* --- Json -------------------------------------------------------------- *)

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("null", Json.Null);
        ("flag", Json.Bool true);
        ("count", Json.Int (-42));
        ("ratio", Json.Float 1.5);
        ("text", Json.String "line\n\"quoted\"\ttab");
        ("items", Json.List [ Json.Int 1; Json.Float 2.25; Json.String "x" ]);
        ("empty_list", Json.List []);
        ("empty_obj", Json.Obj []);
      ]
  in
  checkb "round-trips" true (parse_exn (Json.to_string doc) = doc)

let test_json_member () =
  let doc = parse_exn {|{"a": {"b": 7}, "c": [1, 2]}|} in
  (match Json.member "a" doc with
  | Some inner -> checkb "nested member" true (Json.member "b" inner = Some (Json.Int 7))
  | None -> Alcotest.fail "member a missing");
  checkb "missing key" true (Json.member "zzz" doc = None);
  checkb "non-object" true (Json.member "a" (Json.Int 3) = None)

let test_json_rejects_garbage () =
  let bad = [ ""; "{"; "[1,]"; "{\"a\" 1}"; "tru"; "\"unterminated"; "1 2" ] in
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok _ -> Alcotest.failf "accepted malformed input %S" s
      | Error _ -> ())
    bad

(* --- Trace ------------------------------------------------------------- *)

let test_trace_disabled_records_nothing () =
  Trace.clear ();
  Trace.begin_span "ghost";
  Trace.end_span "ghost";
  Trace.instant "ghost";
  checki "no events while disabled" 0 (List.length (Trace.events ()))

let test_trace_balanced_and_monotonic () =
  with_tracing (fun () ->
      for _ = 1 to 50 do
        Trace.begin_span "outer";
        Trace.begin_span "inner";
        Trace.instant "tick";
        Trace.end_span "inner";
        Trace.end_span "outer"
      done);
  let evs = Trace.events () in
  checki "5 events per iteration" 250 (List.length evs);
  let begins =
    List.length (List.filter (fun (e : Trace.event) -> e.kind = Trace.Begin) evs)
  in
  let ends =
    List.length (List.filter (fun (e : Trace.event) -> e.kind = Trace.End) evs)
  in
  checki "balanced begin/end" begins ends;
  let sorted = ref true in
  let _ =
    List.fold_left
      (fun prev (e : Trace.event) ->
        if e.ts_ns < prev then sorted := false;
        e.ts_ns)
      min_int evs
  in
  checkb "timestamps monotone" true !sorted;
  checki "nothing dropped" 0 (Trace.dropped ());
  Trace.clear ();
  checki "clear empties buffers" 0 (List.length (Trace.events ()))

let test_trace_with_span_on_exception () =
  with_tracing (fun () ->
      (try Trace.with_span "failing" (fun () -> failwith "boom")
       with Failure _ -> ());
      let evs = Trace.events () in
      checki "begin and end both present" 2 (List.length evs))

let test_trace_ring_wraps_not_grows () =
  (* Overfill one domain's ring: old events are overwritten, the
     collection never exceeds the capacity, and the loss is counted. *)
  with_tracing (fun () ->
      for _ = 1 to 20_000 do
        Trace.instant "spin"
      done);
  let kept = List.length (Trace.events ()) in
  checki "capacity-bounded" 16384 kept;
  checkb "drop counter saw the rest" true (Trace.dropped () >= 20_000 - 16384);
  Trace.clear ()

(* --- Metrics ----------------------------------------------------------- *)

let test_metrics_disabled_noop () =
  Metrics.reset ();
  let c = Metrics.counter "obs_test.noop" in
  Metrics.incr_counter c;
  Metrics.add c 41;
  let snap = Metrics.snapshot () in
  checkb "stays zero while disabled" true
    (Metrics.counter_value snap "obs_test.noop" = Some 0)

let test_metrics_counter_and_histogram () =
  let c = Metrics.counter "obs_test.events" in
  let h = Metrics.histogram "obs_test.latency" ~bounds:[| 10.; 100.; 1000. |] in
  with_metrics (fun () ->
      for i = 1 to 100 do
        Metrics.incr_counter c;
        Metrics.observe_int h i
      done);
  let snap = Metrics.snapshot () in
  checkb "counter sums" true (Metrics.counter_value snap "obs_test.events" = Some 100);
  match List.assoc_opt "obs_test.latency" snap.Metrics.histograms with
  | None -> Alcotest.fail "histogram missing from snapshot"
  | Some hs ->
      checki "total observations" 100 hs.Metrics.total;
      (* 1..9 | 10..99 | 100 | - *)
      checkb "bucketed correctly" true (hs.Metrics.buckets = [| 9; 90; 1; 0 |])

let test_metrics_registration_idempotent () =
  let a = Metrics.counter "obs_test.same" in
  let b = Metrics.counter "obs_test.same" in
  with_metrics (fun () ->
      Metrics.incr_counter a;
      Metrics.incr_counter b);
  let snap = Metrics.snapshot () in
  checkb "one counter, two handles" true
    (Metrics.counter_value snap "obs_test.same" = Some 2);
  checki "registered once" 1
    (List.length
       (List.filter (fun (n, _) -> n = "obs_test.same") snap.Metrics.counters))

let test_metrics_sharded_merge_matches_sequential () =
  (* The per-domain shards must merge to exactly the sequential count,
     whatever the domain count.  The host may have one CPU, so the
     domain counts are forced, not detected. *)
  let c = Metrics.counter "obs_test.sharded" in
  let n = 10_000 in
  List.iter
    (fun domains ->
      Metrics.reset ();
      let pool = Exec.Pool.create ~domains () in
      Fun.protect
        ~finally:(fun () -> Exec.Pool.teardown pool)
        (fun () ->
          with_metrics (fun () ->
              Exec.Pool.parallel_for pool n (fun _ -> Metrics.incr_counter c)));
      let snap = Metrics.snapshot () in
      checkb
        (Printf.sprintf "merge equals sequential at %d domains" domains)
        true
        (Metrics.counter_value snap "obs_test.sharded" = Some n))
    [ 1; 2; 3 ]

(* --- disabled-mode allocation contract --------------------------------- *)

let minor_words_of f =
  Gc.full_major ();
  let before = Gc.minor_words () in
  f ();
  Gc.minor_words () -. before

let test_disabled_zero_allocation () =
  Trace.set_enabled false;
  Metrics.set_enabled false;
  let c = Metrics.counter "obs_test.alloc" in
  let h = Metrics.histogram "obs_test.alloc_h" ~bounds:[| 1.; 2. |] in
  (* Warm-up: DLS shards, ring buffers and any lazy setup. *)
  Trace.begin_span "warm";
  Trace.end_span "warm";
  Metrics.incr_counter c;
  Metrics.observe_int h 1;
  let words =
    minor_words_of (fun () ->
        for i = 1 to 10_000 do
          Trace.begin_span "hot";
          Trace.instant "hot";
          Trace.end_span "hot";
          Metrics.incr_counter c;
          Metrics.add c 2;
          Metrics.observe_int h i
        done)
  in
  checkb
    (Printf.sprintf "disabled path allocates nothing (%.0f minor words)" words)
    true (words = 0.)

let test_enabled_recording_allocation_free () =
  (* Enabled-mode span recording is also allocation-free: preallocated
     rings, literal names stored by reference, noalloc clock. *)
  with_tracing (fun () ->
      Trace.begin_span "warm";
      Trace.end_span "warm";
      let words =
        minor_words_of (fun () ->
            for _ = 1 to 10_000 do
              Trace.begin_span "hot";
              Trace.end_span "hot"
            done)
      in
      checkb
        (Printf.sprintf "enabled spans allocate nothing (%.0f minor words)" words)
        true (words = 0.));
  Trace.clear ()

(* --- exporters --------------------------------------------------------- *)

let test_export_trace_json_valid () =
  with_tracing (fun () ->
      Trace.begin_span "phase_a";
      Trace.instant "marker";
      Trace.end_span "phase_a");
  let doc = parse_exn (Json.to_string (Export.trace_json ())) in
  Trace.clear ();
  match doc with
  | Json.List events ->
      checkb "has events" true (List.length events >= 5);
      (* process_name + at least one thread_name metadata, then B/i/E. *)
      let phases =
        List.filter_map
          (fun e ->
            match Json.member "ph" e with Some (Json.String p) -> Some p | _ -> None)
          events
      in
      checki "every event has a phase" (List.length events) (List.length phases);
      checkb "metadata present" true (List.mem "M" phases);
      checkb "duration events present" true (List.mem "B" phases && List.mem "E" phases);
      checkb "instant present" true (List.mem "i" phases);
      List.iter
        (fun e ->
          (match Json.member "ts" e with
          | Some (Json.Float ts) -> checkb "ts rebased near zero" true (ts >= 0.)
          | Some (Json.Int ts) -> checkb "ts rebased near zero" true (ts >= 0)
          | None -> (* metadata events carry no ts *) ()
          | Some _ -> Alcotest.fail "ts has a non-numeric type");
          checkb "pid constant" true (Json.member "pid" e = Some (Json.Int 1)))
        events
  | _ -> Alcotest.fail "trace is not a top-level JSON array"

let test_export_metrics_json () =
  let c = Metrics.counter "obs_test.export" in
  with_metrics (fun () -> Metrics.add c 5);
  let doc = parse_exn (Json.to_string (Export.metrics_json ())) in
  match Json.member "counters" doc with
  | Some counters ->
      checkb "exported counter value" true
        (Json.member "obs_test.export" counters = Some (Json.Int 5))
  | None -> Alcotest.fail "no counters object"

let test_des_trace_bridge () =
  let t = Des.Trace.create () in
  Des.Trace.record t ~resource:"w0" ~start:0. ~finish:1.5 ~label:"compute";
  Des.Trace.record t ~resource:"w1" ~start:0.5 ~finish:2. ~label:"";
  let doc = parse_exn (Json.to_string (Des.Trace.to_chrome t)) in
  match doc with
  | Json.List events ->
      (* 1 process_name + 2 thread_name + 2 complete events. *)
      checki "event count" 5 (List.length events);
      let completes =
        List.filter (fun e -> Json.member "ph" e = Some (Json.String "X")) events
      in
      checki "one X event per interval" 2 (List.length completes);
      checkb "unlabeled interval falls back to the resource name" true
        (List.exists (fun e -> Json.member "name" e = Some (Json.String "w1")) completes);
      checkb "duration in microseconds" true
        (List.exists
           (fun e -> Json.member "dur" e = Some (Json.Float 1.5e6))
           completes)
  | _ -> Alcotest.fail "bridge output is not a JSON array"

let suites =
  [
    ( "obs json",
      [
        Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
        Alcotest.test_case "member access" `Quick test_json_member;
        Alcotest.test_case "rejects malformed" `Quick test_json_rejects_garbage;
      ] );
    ( "obs trace",
      [
        Alcotest.test_case "disabled records nothing" `Quick
          test_trace_disabled_records_nothing;
        Alcotest.test_case "balanced and monotonic" `Quick
          test_trace_balanced_and_monotonic;
        Alcotest.test_case "with_span on exception" `Quick
          test_trace_with_span_on_exception;
        Alcotest.test_case "ring wraps, never grows" `Quick
          test_trace_ring_wraps_not_grows;
      ] );
    ( "obs metrics",
      [
        Alcotest.test_case "disabled no-op" `Quick test_metrics_disabled_noop;
        Alcotest.test_case "counter and histogram" `Quick
          test_metrics_counter_and_histogram;
        Alcotest.test_case "registration idempotent" `Quick
          test_metrics_registration_idempotent;
        Alcotest.test_case "sharded merge = sequential" `Quick
          test_metrics_sharded_merge_matches_sequential;
      ] );
    ( "obs allocation",
      [
        Alcotest.test_case "disabled path allocates zero" `Quick
          test_disabled_zero_allocation;
        Alcotest.test_case "enabled spans allocate zero" `Quick
          test_enabled_recording_allocation_free;
      ] );
    ( "obs export",
      [
        Alcotest.test_case "trace-event JSON valid" `Quick test_export_trace_json_valid;
        Alcotest.test_case "metrics JSON" `Quick test_export_metrics_json;
        Alcotest.test_case "Des.Trace bridge" `Quick test_des_trace_bridge;
      ] );
  ]
