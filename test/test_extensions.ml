(* Ablation machinery: recursive bisection partitioner, SUMMA, the 2.5D
   communication model, histogram sort, map-side combiners and
   straggler jitter. *)

module Bisection = Partition.Bisection
module Column_partition = Partition.Column_partition
module Layout = Partition.Layout
module Lower_bound = Partition.Lower_bound
module Summa = Linalg.Summa
module C25d = Linalg.C25d
module Matrix = Linalg.Matrix
module Histogram_sort = Sortlib.Histogram_sort
module Rng = Numerics.Rng

let checkb = Alcotest.(check bool)
let checkf msg ?(eps = 1e-9) expected actual =
  Alcotest.(check (float eps)) msg expected actual

(* --- recursive bisection --- *)

let test_bisection_valid_layout () =
  let areas = [| 0.4; 0.3; 0.2; 0.1 |] in
  match Layout.validate ~tol:1e-7 ~expected_areas:areas (Bisection.layout ~areas) with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_bisection_equal_areas () =
  (* 4 equal areas: bisection recovers the quadrant partition, cost 4. *)
  checkf "quadrants" 4. (Bisection.cost ~areas:(Array.make 4 0.25))

let test_bisection_single () =
  checkf "whole square" 2. (Bisection.cost ~areas:[| 1. |])

let test_bisection_vs_dp () =
  (* The DP is optimal within the column-based class; bisection can win
     or lose but must stay within the same 7/4 ballpark on random
     instances. *)
  let rng = Rng.create ~seed:91 () in
  for _ = 1 to 100 do
    let p = 2 + Rng.int rng 20 in
    let raw = Array.init p (fun _ -> Rng.uniform rng 0.05 1.) in
    let total = Numerics.Kahan.sum raw in
    let areas = Array.map (fun a -> a /. total) raw in
    let bisection = Bisection.cost ~areas in
    let lb = Lower_bound.peri_sum ~areas in
    checkb "bisection above LB" true (bisection >= lb -. 1e-9);
    checkb "bisection within 2x LB" true (bisection <= 2. *. lb)
  done

let qcheck_bisection_valid =
  QCheck.Test.make ~name:"bisection always produces a valid layout" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 25) (float_range 0.01 10.))
    (fun raw ->
      QCheck.assume (raw <> []);
      let total = List.fold_left ( +. ) 0. raw in
      let areas = Array.of_list (List.map (fun a -> a /. total) raw) in
      match Layout.validate ~tol:1e-6 ~expected_areas:areas (Bisection.layout ~areas) with
      | Ok () -> true
      | Error _ -> false)

(* --- SUMMA --- *)

let test_summa_correct () =
  let rng = Rng.create ~seed:92 () in
  let n = 24 in
  let a = Matrix.random rng ~rows:n ~cols:n in
  let b = Matrix.random rng ~rows:n ~cols:n in
  let stats = Summa.distributed ~grid_rows:2 ~grid_cols:3 ~panel:5 a b in
  checkb "product correct" true (Matrix.approx_equal stats.Summa.result (Matrix.mul a b))

let test_summa_words_panel_independent () =
  let rng = Rng.create ~seed:93 () in
  let n = 16 in
  let a = Matrix.random rng ~rows:n ~cols:n in
  let b = Matrix.random rng ~rows:n ~cols:n in
  let words panel = (Summa.distributed ~grid_rows:2 ~grid_cols:2 ~panel a b).Summa.words in
  Alcotest.(check int) "panel 1 vs 4" (words 1) (words 4);
  Alcotest.(check int) "panel 4 vs 16" (words 4) (words 16);
  Alcotest.(check int) "matches closed form" (Summa.word_volume ~grid_rows:2 ~grid_cols:2 ~n)
    (words 8)

let test_summa_messages_drop_with_panel () =
  let rng = Rng.create ~seed:94 () in
  let n = 16 in
  let a = Matrix.random rng ~rows:n ~cols:n in
  let b = Matrix.random rng ~rows:n ~cols:n in
  let messages panel =
    (Summa.distributed ~grid_rows:2 ~grid_cols:2 ~panel a b).Summa.messages
  in
  Alcotest.(check int) "panel 1" (2 * 4 * 16) (messages 1);
  Alcotest.(check int) "panel 4" (2 * 4 * 4) (messages 4);
  Alcotest.(check int) "formula" (Summa.message_count ~grid_rows:2 ~grid_cols:2 ~n ~panel:4)
    (messages 4)

let test_summa_matches_rank1_volume () =
  (* SUMMA on an equal grid moves the same words as the rank-1 zone
     algorithm on the same zones. *)
  let n = 20 in
  let zones = Linalg.Zone.uniform_grid ~p:4 ~n in
  Alcotest.(check int) "volumes agree"
    (Linalg.Matmul.predicted_communication ~zones ~n)
    (Summa.word_volume ~grid_rows:2 ~grid_cols:2 ~n)

let test_summa_ragged_n () =
  let rng = Rng.create ~seed:95 () in
  let n = 17 in
  let a = Matrix.random rng ~rows:n ~cols:n in
  let b = Matrix.random rng ~rows:n ~cols:n in
  let stats = Summa.distributed ~grid_rows:3 ~grid_cols:2 ~panel:4 a b in
  checkb "ragged grid correct" true (Matrix.approx_equal stats.Summa.result (Matrix.mul a b));
  Alcotest.(check int) "steps = ceil(n/panel)" 5 stats.Summa.steps

(* --- 2.5D model --- *)

let test_c25d_matches_2d () =
  (* c = 1 on a square grid must equal the measured SUMMA volume
     2n²√p. *)
  let n = 32 and p = 16 in
  let model = C25d.evaluate ~p ~c:1 ~n in
  checkf "2D volume" ~eps:1e-6
    (float_of_int (Summa.word_volume ~grid_rows:4 ~grid_cols:4 ~n))
    model.C25d.total

let test_c25d_replication_saves () =
  let n = 64 and p = 32 in
  let flat = C25d.evaluate ~p:16 ~c:1 ~n in
  ignore flat;
  let two_half = C25d.evaluate ~p ~c:2 ~n in
  checkf "per-proc speedup sqrt c" ~eps:1e-9 (sqrt 2.) (C25d.speedup_over_2d ~p ~c:2 ~n);
  checkb "memory cost" true (two_half.C25d.memory_factor = 2.)

let test_c25d_validation () =
  checkb "c beyond p^(1/3) rejected" true
    (try
       ignore (C25d.evaluate ~p:16 ~c:4 ~n:8);
       false
     with Invalid_argument _ -> true);
  checkb "non-square p/c rejected" true
    (try
       ignore (C25d.evaluate ~p:12 ~c:1 ~n:8);
       false
     with Invalid_argument _ -> true)

let test_c25d_best_replication () =
  Alcotest.(check int) "p=32 -> c=2" 2 (C25d.best_replication ~p:32);
  Alcotest.(check int) "p=16 -> c=1" 1 (C25d.best_replication ~p:16);
  Alcotest.(check int) "p=64 -> c=4" 4 (C25d.best_replication ~p:64)

(* --- histogram sort --- *)

let test_histogram_sorts () =
  let rng = Rng.create ~seed:96 () in
  let keys = Array.init 20_000 (fun _ -> Rng.float rng) in
  let out = Histogram_sort.sort keys ~p:8 in
  let reference = Array.copy keys in
  Array.sort Float.compare reference;
  Alcotest.(check (array (float 0.))) "sorted output" reference out

let test_histogram_balance () =
  let rng = Rng.create ~seed:97 () in
  let keys = Array.init 50_000 (fun _ -> Rng.float rng) in
  let result = Histogram_sort.splitters ~tolerance:0.01 keys ~p:16 in
  checkb "tight balance" true (Histogram_sort.max_bucket_ratio result <= 1.011);
  checkb "needed a few passes" true (result.Histogram_sort.passes > 1)

let test_histogram_beats_sample_sort_balance () =
  (* The point of the ablation: deterministic refinement balances
     tighter than one random sample. *)
  let rng = Rng.create ~seed:98 () in
  let keys = Array.init 50_000 (fun _ -> Rng.float rng) in
  let histogram = Histogram_sort.splitters ~tolerance:0.01 keys ~p:16 in
  let splitters =
    Sortlib.Sample_sort.choose_splitters ~cmp:Float.compare rng keys ~p:16 ~s:64
  in
  let buckets = Sortlib.Sample_sort.partition ~cmp:Float.compare keys ~splitters in
  checkb "histogram tighter" true
    (Histogram_sort.max_bucket_ratio histogram
    <= Sortlib.Sample_sort.max_bucket_ratio buckets +. 1e-9)

let test_histogram_skewed_input () =
  let rng = Rng.create ~seed:99 () in
  let keys = Array.init 30_000 (fun _ -> Rng.float rng ** 4.) in
  let result = Histogram_sort.splitters ~tolerance:0.02 keys ~p:8 in
  checkb "skew handled" true (Histogram_sort.max_bucket_ratio result <= 1.03)

let test_histogram_p1 () =
  let result = Histogram_sort.splitters [| 3.; 1.; 2. |] ~p:1 in
  Alcotest.(check int) "single bucket" 3 result.Histogram_sort.bucket_sizes.(0);
  Alcotest.(check int) "no passes" 0 result.Histogram_sort.passes

let qcheck_histogram_sorts =
  QCheck.Test.make ~name:"histogram sort sorts arbitrary float arrays" ~count:50
    QCheck.(array_of_size Gen.(int_range 1 500) (float_range (-100.) 100.))
    (fun keys ->
      QCheck.assume (Array.length keys > 0);
      let out = Histogram_sort.sort keys ~p:5 in
      let reference = Array.copy keys in
      Array.sort Float.compare reference;
      out = reference)

(* --- combiner and jitter --- *)

let test_combiner_preserves_output () =
  let docs = [| "a b a a"; "b b a" |] in
  let star = Platform.Star.of_speeds [ 1.; 2. ] in
  let job = Mapreduce.Jobs.word_count ~docs in
  let reduce _ vs = List.fold_left ( + ) 0 vs in
  let plain = Mapreduce.Engine.run star job ~reduce in
  let combined = Mapreduce.Engine.run ~combine:reduce star job ~reduce in
  Alcotest.(check (list (pair string int)))
    "same counts"
    (List.sort compare plain.Mapreduce.Engine.output)
    (List.sort compare combined.Mapreduce.Engine.output)

let test_combiner_cuts_shuffle () =
  let docs = [| "x x x x x x x x"; "x x x x" |] in
  let star = Platform.Star.of_speeds [ 1.; 2. ] in
  let job = Mapreduce.Jobs.word_count ~docs in
  let reduce _ vs = List.fold_left ( + ) 0 vs in
  let plain = Mapreduce.Engine.run star job ~reduce in
  let combined = Mapreduce.Engine.run ~combine:reduce star job ~reduce in
  Alcotest.(check int) "12 raw pairs" 12 plain.Mapreduce.Engine.shuffle.Mapreduce.Shuffle.pairs;
  Alcotest.(check int) "2 combined pairs" 2
    combined.Mapreduce.Engine.shuffle.Mapreduce.Shuffle.pairs

let test_jitter_determinism () =
  let star = Platform.Star.of_speeds [ 1.; 1. ] in
  let tasks = Array.init 10 (fun i -> Mapreduce.Task.make ~id:i ~data_ids:[| i |] ~cost:5.) in
  let run seed =
    (Mapreduce.Scheduler.run ~jitter:(Rng.create ~seed (), 0.5) star ~tasks
       ~block_size:(fun _ -> 1.))
      .Mapreduce.Scheduler.makespan
  in
  checkf "same seed, same makespan" (run 5) (run 5);
  checkb "different seed, different makespan" true (run 5 <> run 6)

let test_jitter_speculation_rescues () =
  (* With heavy-tailed stragglers, speculation should cut the expected
     makespan. *)
  let star = Platform.Star.of_speeds [ 1.; 1.; 1.; 1. ] in
  let tasks = Array.init 24 (fun i -> Mapreduce.Task.make ~id:i ~data_ids:[| i |] ~cost:10.) in
  let total speculation seed =
    (Mapreduce.Scheduler.run
       ~config:{ Mapreduce.Scheduler.default_config with speculation }
       ~jitter:(Rng.create ~seed (), 1.5)
       star ~tasks ~block_size:(fun _ -> 0.1))
      .Mapreduce.Scheduler.makespan
  in
  let seeds = List.init 20 (fun i -> 100 + i) in
  let sum speculation =
    List.fold_left (fun acc seed -> acc +. total speculation seed) 0. seeds
  in
  checkb "speculation cuts expected makespan" true
    (sum Mapreduce.Scheduler.At_idle < sum Mapreduce.Scheduler.Off)

let suites =
  [
    ( "bisection partitioner",
      [
        Alcotest.test_case "valid layout" `Quick test_bisection_valid_layout;
        Alcotest.test_case "equal areas" `Quick test_bisection_equal_areas;
        Alcotest.test_case "single area" `Quick test_bisection_single;
        Alcotest.test_case "vs DP on random instances" `Slow test_bisection_vs_dp;
        QCheck_alcotest.to_alcotest qcheck_bisection_valid;
      ] );
    ( "summa",
      [
        Alcotest.test_case "correct" `Quick test_summa_correct;
        Alcotest.test_case "words panel-independent" `Quick test_summa_words_panel_independent;
        Alcotest.test_case "messages drop with panel" `Quick test_summa_messages_drop_with_panel;
        Alcotest.test_case "matches rank-1 volume" `Quick test_summa_matches_rank1_volume;
        Alcotest.test_case "ragged n" `Quick test_summa_ragged_n;
      ] );
    ( "2.5D model",
      [
        Alcotest.test_case "matches 2D at c=1" `Quick test_c25d_matches_2d;
        Alcotest.test_case "replication saves sqrt(c)" `Quick test_c25d_replication_saves;
        Alcotest.test_case "validation" `Quick test_c25d_validation;
        Alcotest.test_case "best replication" `Quick test_c25d_best_replication;
      ] );
    ( "histogram sort",
      [
        Alcotest.test_case "sorts" `Quick test_histogram_sorts;
        Alcotest.test_case "tight balance" `Quick test_histogram_balance;
        Alcotest.test_case "tighter than sample sort" `Quick
          test_histogram_beats_sample_sort_balance;
        Alcotest.test_case "skewed input" `Quick test_histogram_skewed_input;
        Alcotest.test_case "p = 1" `Quick test_histogram_p1;
        QCheck_alcotest.to_alcotest qcheck_histogram_sorts;
      ] );
    ( "combiner and jitter",
      [
        Alcotest.test_case "combiner preserves output" `Quick test_combiner_preserves_output;
        Alcotest.test_case "combiner cuts shuffle" `Quick test_combiner_cuts_shuffle;
        Alcotest.test_case "jitter determinism" `Quick test_jitter_determinism;
        Alcotest.test_case "speculation rescues stragglers" `Quick
          test_jitter_speculation_rescues;
      ] );
  ]
