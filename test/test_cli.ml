(* The command-line grammar, evaluated in-process. *)

let checkb = Alcotest.(check bool)

(* Swallow the command's stdout so test output stays readable. *)
let eval_quietly argv =
  let dev_null = open_out (if Sys.win32 then "NUL" else "/dev/null") in
  let saved = Unix.dup Unix.stdout in
  flush stdout;
  Unix.dup2 (Unix.descr_of_out_channel dev_null) Unix.stdout;
  Fun.protect
    ~finally:(fun () ->
      flush stdout;
      Unix.dup2 saved Unix.stdout;
      Unix.close saved;
      close_out dev_null)
    (fun () -> Cli.eval_value ~argv)

let expect_ok argv =
  match eval_quietly argv with
  | Ok (`Ok ()) -> ()
  | Ok `Help | Ok `Version -> ()
  | Error e ->
      Alcotest.failf "command failed (%s): %s"
        (match e with `Exn -> "exception" | `Parse -> "parse" | `Term -> "term")
        (String.concat " " (Array.to_list argv))

let expect_parse_error argv =
  (* Cmdliner reports unknown sub-commands as `Term errors and malformed
     options as `Parse errors; both are rejections. *)
  match eval_quietly argv with
  | Error (`Parse | `Term) -> ()
  | Ok _ | Error `Exn ->
      Alcotest.failf "expected parse error: %s" (String.concat " " (Array.to_list argv))

let test_version () = expect_ok [| "nldl"; "--version" |]
let test_help () = expect_ok [| "nldl"; "--help=plain" |]
let test_subcommand_help () = expect_ok [| "nldl"; "fig4"; "--help=plain" |]

let test_partition_runs () = expect_ok [| "nldl"; "partition"; "--speeds"; "1,2,4" |]

let test_partition_platform_file () =
  let path = Filename.temp_file "nldl" ".platform" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_text path (fun oc -> output_string oc "1 2\n3 4\n");
      expect_ok [| "nldl"; "partition"; "--platform"; path |])

let test_fig4_small_run () =
  expect_ok [| "nldl"; "fig4"; "--trials"; "2"; "-p"; "10"; "--profile"; "homogeneous" |]

let test_fig4_csv () =
  let path = Filename.temp_file "nldl" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      expect_ok
        [| "nldl"; "fig4"; "--trials"; "2"; "-p"; "10"; "--csv"; path |];
      let ic = open_in path in
      let header = input_line ic in
      close_in ic;
      checkb "csv written" true (String.length header > 0))

let test_faults_json () =
  (* The registry-built faults command emits parseable JSON rows. *)
  let path = Filename.temp_file "nldl" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      expect_ok
        [|
          "nldl"; "faults"; "--trials"; "2"; "--crash-rates"; "0.5"; "--sigmas"; "0.5";
          "--tasks"; "8"; "--json"; path;
        |];
      let doc = In_channel.with_open_text path In_channel.input_all in
      match Obs.Json.of_string doc with
      | Error msg -> Alcotest.failf "invalid JSON: %s" msg
      | Ok json ->
          checkb "has rows" true
            (match Obs.Json.member "rows" json with
            | Some (Obs.Json.List (_ :: _)) -> true
            | _ -> false))

let test_nonlinear_runs () =
  expect_ok [| "nldl"; "nonlinear"; "--alpha"; "2"; "-p"; "2,4" |]

let test_ratio_runs () = expect_ok [| "nldl"; "ratio"; "-k"; "4"; "-p"; "6" |]

let test_unknown_command () = expect_parse_error [| "nldl"; "frobnicate" |]
let test_bad_profile () =
  expect_parse_error [| "nldl"; "fig4"; "--profile"; "warp-speed" |]
let test_bad_number () = expect_parse_error [| "nldl"; "fig4"; "--trials"; "many" |]

let test_verbose_accepted () =
  expect_ok [| "nldl"; "partition"; "--speeds"; "1,2"; "-v" |]

let suites =
  [
    ( "cli",
      [
        Alcotest.test_case "version" `Quick test_version;
        Alcotest.test_case "help" `Quick test_help;
        Alcotest.test_case "subcommand help" `Quick test_subcommand_help;
        Alcotest.test_case "partition" `Quick test_partition_runs;
        Alcotest.test_case "partition from file" `Quick test_partition_platform_file;
        Alcotest.test_case "fig4 small" `Quick test_fig4_small_run;
        Alcotest.test_case "fig4 csv" `Quick test_fig4_csv;
        Alcotest.test_case "faults json" `Quick test_faults_json;
        Alcotest.test_case "nonlinear" `Quick test_nonlinear_runs;
        Alcotest.test_case "ratio" `Quick test_ratio_runs;
        Alcotest.test_case "unknown command" `Quick test_unknown_command;
        Alcotest.test_case "bad profile" `Quick test_bad_profile;
        Alcotest.test_case "bad number" `Quick test_bad_number;
        Alcotest.test_case "verbose flag" `Quick test_verbose_accepted;
      ] );
  ]
