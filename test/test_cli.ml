(* The command-line grammar, evaluated in-process through the
   documented programmatic entry [Cli.eval_for_test] — no argv arrays,
   no dup2 plumbing of our own. *)

let checkb = Alcotest.(check bool)

let expect_ok args =
  match Cli.eval_for_test args with
  | Ok _ -> ()
  | Error e ->
      Alcotest.failf "command failed (%s): %s"
        (match e with `Exn -> "exception" | `Parse -> "parse" | `Term -> "term")
        (String.concat " " args)

let expect_out args =
  match Cli.eval_for_test args with
  | Ok { Cli.status = 0; out } -> out
  | Ok { Cli.status; _ } ->
      Alcotest.failf "exit %d: %s" status (String.concat " " args)
  | Error _ -> Alcotest.failf "command failed: %s" (String.concat " " args)

let expect_parse_error args =
  (* Cmdliner reports unknown sub-commands as `Term errors and malformed
     options as `Parse errors; both are rejections. *)
  match Cli.eval_for_test args with
  | Error (`Parse | `Term) -> ()
  | Ok _ | Error `Exn ->
      Alcotest.failf "expected parse error: %s" (String.concat " " args)

let test_version () = expect_ok [ "--version" ]
let test_help () = expect_ok [ "--help=plain" ]
let test_subcommand_help () = expect_ok [ "fig4"; "--help=plain" ]

let test_partition_runs () = expect_ok [ "partition"; "--speeds"; "1,2,4" ]

let test_partition_platform_file () =
  let path = Filename.temp_file "nldl" ".platform" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_text path (fun oc -> output_string oc "1 2\n3 4\n");
      expect_ok [ "partition"; "--platform"; path ])

let test_fig4_small_run () =
  expect_ok [ "fig4"; "--trials"; "2"; "-p"; "10"; "--profile"; "homogeneous" ]

let test_fig4_csv () =
  let path = Filename.temp_file "nldl" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      expect_ok [ "fig4"; "--trials"; "2"; "-p"; "10"; "--csv"; path ];
      let ic = open_in path in
      let header = input_line ic in
      close_in ic;
      checkb "csv written" true (String.length header > 0))

let test_faults_json () =
  (* The registry-built faults command emits the Api.Response envelope
     with the experiment's rows. *)
  let path = Filename.temp_file "nldl" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      expect_ok
        [
          "faults"; "--trials"; "2"; "--crash-rates"; "0.5"; "--sigmas"; "0.5";
          "--tasks"; "8"; "--json"; path;
        ];
      let doc = In_channel.with_open_text path In_channel.input_all in
      match Obs.Json.of_string doc with
      | Error msg -> Alcotest.failf "invalid JSON: %s" msg
      | Ok json ->
          checkb "has rows" true
            (match Obs.Json.member "rows" json with
            | Some (Obs.Json.List (_ :: _)) -> true
            | _ -> false);
          checkb "carries the envelope version" true
            (Obs.Json.member "schema_version" json
            = Some (Obs.Json.Int Api.Response.schema_version)))

let test_nonlinear_runs () = expect_ok [ "nonlinear"; "--alpha"; "2"; "-p"; "2,4" ]

let test_ratio_runs () = expect_ok [ "ratio"; "-k"; "4"; "-p"; "6" ]

let test_query_inline () =
  let out =
    expect_out
      [ "query"; "--inline"; {|{"kind":"ratio","platform":{"speeds":[1,2]},"total":4}|} ]
  in
  match Obs.Json.of_string (String.trim out) with
  | Error msg -> Alcotest.failf "query emitted invalid JSON: %s" msg
  | Ok j -> (
      match Api.Response.of_json j with
      | Ok r -> checkb "not an error" false (Api.Response.is_error r)
      | Error msg -> Alcotest.failf "not a response envelope: %s" msg)

let test_query_file () =
  let path = Filename.temp_file "nldl" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_text path (fun oc ->
          output_string oc
            ("{\"kind\":\"plan\",\"platform\":{\"speeds\":[1,2,4]}}\n"
            ^ "{\"kind\":\"ratio\",\"platform\":{\"speeds\":[2,2]}}\n"));
      let out = expect_out [ "query"; path ] in
      let lines = String.split_on_char '\n' (String.trim out) in
      Alcotest.(check int) "one answer per line" 2 (List.length lines))

let test_unknown_command () = expect_parse_error [ "frobnicate" ]
let test_bad_profile () = expect_parse_error [ "fig4"; "--profile"; "warp-speed" ]
let test_bad_number () = expect_parse_error [ "fig4"; "--trials"; "many" ]

let test_verbose_accepted () = expect_ok [ "partition"; "--speeds"; "1,2"; "-v" ]

let suites =
  [
    ( "cli",
      [
        Alcotest.test_case "version" `Quick test_version;
        Alcotest.test_case "help" `Quick test_help;
        Alcotest.test_case "subcommand help" `Quick test_subcommand_help;
        Alcotest.test_case "partition" `Quick test_partition_runs;
        Alcotest.test_case "partition from file" `Quick test_partition_platform_file;
        Alcotest.test_case "fig4 small" `Quick test_fig4_small_run;
        Alcotest.test_case "fig4 csv" `Quick test_fig4_csv;
        Alcotest.test_case "faults json" `Quick test_faults_json;
        Alcotest.test_case "nonlinear" `Quick test_nonlinear_runs;
        Alcotest.test_case "ratio" `Quick test_ratio_runs;
        Alcotest.test_case "query --inline" `Quick test_query_inline;
        Alcotest.test_case "query from file" `Quick test_query_file;
        Alcotest.test_case "unknown command" `Quick test_unknown_command;
        Alcotest.test_case "bad profile" `Quick test_bad_profile;
        Alcotest.test_case "bad number" `Quick test_bad_number;
        Alcotest.test_case "verbose flag" `Quick test_verbose_accepted;
      ] );
  ]
