(* The serve daemon stack: LRU cache semantics, the zero-allocation hit
   path, admission control, and end-to-end byte-identity between the
   daemon, the batching engine and the one-shot CLI. *)

let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)
let checki = Alcotest.(check int)

let ratio_line total =
  Printf.sprintf
    {|{"kind":"ratio","platform":{"speeds":[1,2,3,5]},"workload":{"power":2},"total":%d}|}
    total

(* ------------------------------------------------------------------ *)
(* Cache.                                                              *)

let test_cache_lru_eviction () =
  let c = Serve.Cache.create ~capacity:2 in
  Serve.Cache.insert c ~key:"a" ~line:"A";
  Serve.Cache.insert c ~key:"b" ~line:"B";
  checks "a cached" "A" (Serve.Cache.find c "a");
  (* a is now most recent; inserting c evicts b *)
  Serve.Cache.insert c ~key:"c" ~line:"C";
  checki "size bounded" 2 (Serve.Cache.size c);
  checki "one eviction" 1 (Serve.Cache.evictions c);
  checks "a survived" "A" (Serve.Cache.find c "a");
  (match Serve.Cache.find c "b" with
  | exception Serve.Cache.Miss -> ()
  | line -> Alcotest.failf "b should be evicted, got %s" line);
  checks "c cached" "C" (Serve.Cache.find c "c")

let test_cache_memo_follows_eviction () =
  let c = Serve.Cache.create ~capacity:1 in
  Serve.Cache.insert c ~key:"k1" ~line:"L1";
  Serve.Cache.memoize c ~raw:"raw1" ~key:"k1";
  checks "memo hit" "L1" (Serve.Cache.find_memo c "raw1");
  Serve.Cache.insert c ~key:"k2" ~line:"L2";
  (match Serve.Cache.find_memo c "raw1" with
  | exception Serve.Cache.Miss -> ()
  | line -> Alcotest.failf "memo should die with its node, got %s" line);
  checks "replacement cached" "L2" (Serve.Cache.find c "k2")

let test_cache_replace_same_key () =
  let c = Serve.Cache.create ~capacity:4 in
  Serve.Cache.insert c ~key:"k" ~line:"old";
  Serve.Cache.insert c ~key:"k" ~line:"new";
  checki "no duplicate" 1 (Serve.Cache.size c);
  checks "replaced" "new" (Serve.Cache.find c "k")

(* ------------------------------------------------------------------ *)
(* Batch engine.                                                       *)

let batch ?(config = Serve.Batch.default_config) () = Serve.Batch.create config

let cache_size b =
  match Obs.Json.member "cache_size" (Serve.Batch.stats_json b) with
  | Some (Obs.Json.Int n) -> n
  | _ -> Alcotest.fail "stats missing cache_size"

let test_handle_line_miss_then_hit () =
  let b = batch () in
  let line = ratio_line 10 in
  let cold = Serve.Batch.handle_line b line in
  let warm = Serve.Batch.handle_line b line in
  checks "hit is byte-identical to the cold solve" cold warm;
  checkb "counted a hit" true (Serve.Batch.hits b >= 1);
  checki "one miss" 1 (Serve.Batch.misses b)

let test_handle_line_zero_alloc_hit () =
  let b = batch () in
  let line = ratio_line 11 in
  ignore (Serve.Batch.handle_line b line);
  ignore (Serve.Batch.handle_line b line);
  (* Warmed: the repeat is a memo probe. *)
  let before = Gc.minor_words () in
  let answer = Serve.Batch.handle_line b line in
  let after = Gc.minor_words () in
  checkb "answer non-empty" true (String.length answer > 0);
  Alcotest.(check (float 0.)) "zero minor words on the hit path" 0. (after -. before)

let test_spelling_variants_share_entry () =
  (* Permuted speeds and reordered fields hit the fingerprint table and
     answer byte-identically; the memo then catches each spelling. *)
  let b = batch () in
  let a1 =
    Serve.Batch.handle_line b {|{"kind":"ratio","platform":{"speeds":[1,2,3]},"total":5}|}
  in
  let a2 =
    Serve.Batch.handle_line b {|{"total":5,"platform":{"speeds":[3,1,2]},"kind":"ratio"}|}
  in
  checks "spellings agree" a1 a2;
  checki "solved once" 1 (Serve.Batch.misses b);
  checkb "second spelling was a hit" true (Serve.Batch.hits b >= 1)

let test_batch_order_and_dedup () =
  let b = batch () in
  let lines = [| ratio_line 1; ratio_line 2; ratio_line 1; ratio_line 3; ratio_line 2 |] in
  let answers = Serve.Batch.handle_batch b lines in
  checki "one answer per request" (Array.length lines) (Array.length answers);
  checks "duplicates answered identically" answers.(0) answers.(2);
  checks "duplicates answered identically (2)" answers.(1) answers.(4);
  (* Every line missed the cache, but the batch deduplicates by
     fingerprint before solving: only the three distinct requests reach
     the pool and the cache. *)
  checki "five lookup misses" 5 (Serve.Batch.misses b);
  checki "three distinct solves cached" 3 (cache_size b);
  Array.iter
    (fun a -> checkb "no errors" false
        (Api.Response.is_error (Result.get_ok (Api.Response.of_json (Result.get_ok (Obs.Json.of_string a))))))
    answers

let test_malformed_request () =
  let b = batch () in
  let answer = Serve.Batch.handle_line b "{definitely not json" in
  checkb "bad_request error" true
    (let open Api.Response in
     match of_json (Result.get_ok (Obs.Json.of_string answer)) with
     | Ok { body = Error e; _ } -> e.code = "bad_request"
     | _ -> false)

let error_code answer =
  let open Api.Response in
  match of_json (Result.get_ok (Obs.Json.of_string answer)) with
  | Ok { body = Error e; _ } -> Some e.code
  | _ -> None

let test_deadline_rejection () =
  let b =
    batch ~config:{ Serve.Batch.default_config with deadline_s = Some 0. } ()
  in
  let answer = Serve.Batch.handle_line b (ratio_line 12) in
  Alcotest.(check (option string)) "deadline code" (Some "deadline") (error_code answer);
  checkb "counted rejected" true (Serve.Batch.requests b = 1)

let test_queue_overflow () =
  let b = batch ~config:{ Serve.Batch.default_config with queue_depth = 2 } () in
  let lines = Array.init 5 (fun i -> ratio_line (20 + i)) in
  let answers = Serve.Batch.handle_batch b lines in
  let rejected =
    Array.to_list answers
    |> List.filter (fun a -> error_code a = Some "overloaded")
    |> List.length
  in
  checki "overflow rejected" 3 rejected;
  checki "admitted solved" 2 (cache_size b)

(* ------------------------------------------------------------------ *)
(* Byte-identity with the one-shot CLI.                                *)

let test_byte_identity_with_cli () =
  let line = ratio_line 13 in
  let b = batch () in
  let daemon_answer = Serve.Batch.handle_line b line in
  let daemon_cached = Serve.Batch.handle_line b line in
  match Cli.eval_for_test [ "query"; "--inline"; line ] with
  | Error _ -> Alcotest.fail "nldl query --inline failed"
  | Ok { status; out } ->
      checki "cli exit 0" 0 status;
      checks "cold daemon answer = one-shot CLI" (daemon_answer ^ "\n") out;
      checks "cached daemon answer = one-shot CLI" (daemon_cached ^ "\n") out

(* ------------------------------------------------------------------ *)
(* Daemon over a real socket, concurrent clients.                      *)

let test_daemon_concurrent_clients () =
  let socket_path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "nldl-test-%d.sock" (Unix.getpid ()))
  in
  if Sys.file_exists socket_path then Sys.remove socket_path;
  let ready = Atomic.make false in
  let daemon =
    Domain.spawn (fun () ->
        Serve.Daemon.run
          ~on_ready:(fun () -> Atomic.set ready true)
          {
            Serve.Daemon.socket_path;
            tcp_port = None;
            batch = Serve.Batch.default_config;
          })
  in
  let t0 = Obs.Clock.now_ns () in
  let deadline_ns = 10_000_000_000 in
  while (not (Atomic.get ready)) && Obs.Clock.now_ns () - t0 < deadline_ns do
    Unix.sleepf 0.01
  done;
  checkb "daemon came up" true (Atomic.get ready);
  (* Four clients, each issuing the same small query mix; half the
     traffic repeats, so the cache must register hits. *)
  let queries = Array.init 8 (fun i -> ratio_line (30 + (i mod 4))) in
  let client_run () =
    let c = Serve.Client.connect_unix socket_path in
    let answers = Array.map (fun q -> Serve.Client.request c q) queries in
    Serve.Client.close c;
    answers
  in
  let clients = Array.init 4 (fun _ -> Domain.spawn client_run) in
  let all = Array.map Domain.join clients in
  Array.iter
    (fun answers ->
      Array.iteri
        (fun i a ->
          checks "all clients agree, repeats identical" all.(0).(i mod 4) a)
        answers)
    all;
  let ctl = Serve.Client.connect_unix socket_path in
  checks "ping" {|{"control":"pong"}|} (Serve.Client.request ctl {|{"control":"ping"}|});
  let stats = Serve.Client.request ctl {|{"control":"stats"}|} in
  (match Obs.Json.of_string stats with
  | Error msg -> Alcotest.failf "stats not JSON: %s" msg
  | Ok j ->
      (match Obs.Json.member "cache_hits" j with
      | Some (Obs.Json.Int h) -> checkb "cache hits observed" true (h > 0)
      | _ -> Alcotest.fail "stats missing cache_hits"));
  checks "shutdown ack" {|{"control":"ok"}|}
    (Serve.Client.request ctl {|{"control":"shutdown"}|});
  Serve.Client.close ctl;
  let engine = Domain.join daemon in
  checkb "daemon served everything" true (Serve.Batch.requests engine >= 32);
  checkb "socket unlinked" false (Sys.file_exists socket_path)

let suites =
  [
    ( "serve.cache",
      [
        Alcotest.test_case "LRU eviction order" `Quick test_cache_lru_eviction;
        Alcotest.test_case "memo dies with its node" `Quick test_cache_memo_follows_eviction;
        Alcotest.test_case "replace same key" `Quick test_cache_replace_same_key;
      ] );
    ( "serve.batch",
      [
        Alcotest.test_case "miss then hit" `Quick test_handle_line_miss_then_hit;
        Alcotest.test_case "zero-alloc hit path" `Quick test_handle_line_zero_alloc_hit;
        Alcotest.test_case "spelling variants share entry" `Quick
          test_spelling_variants_share_entry;
        Alcotest.test_case "batch order and dedup" `Quick test_batch_order_and_dedup;
        Alcotest.test_case "malformed request" `Quick test_malformed_request;
        Alcotest.test_case "deadline rejection" `Quick test_deadline_rejection;
        Alcotest.test_case "queue overflow" `Quick test_queue_overflow;
      ] );
    ( "serve.identity",
      [ Alcotest.test_case "daemon = one-shot CLI, bytes" `Quick test_byte_identity_with_cli ] );
    ( "serve.daemon",
      [ Alcotest.test_case "concurrent clients over a socket" `Quick test_daemon_concurrent_clients ] );
  ]
