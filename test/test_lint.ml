(* nldl-lint: fixture corpus per rule, suppression round-trips, baseline
   semantics, and a real-tree gate check.  Fixtures go through
   [Lint.Driver.lint_string] so no temp files are needed except for the
   baseline and H304 directory tests. *)

let rules_of findings = List.map (fun (f : Lint.Finding.t) -> f.rule) findings

let has rule findings = List.mem rule (rules_of findings)

let check_fires rule ~file src () =
  let fs = Lint.Driver.lint_string ~file src in
  Alcotest.(check bool) (rule ^ " fires") true (has rule fs)

let check_clean ?rule ~file src () =
  let fs = Lint.Driver.lint_string ~file src in
  match rule with
  | Some r -> Alcotest.(check bool) (r ^ " silent") false (has r fs)
  | None ->
      Alcotest.(check (list string)) "no findings" [] (rules_of fs)

(* ------------------------------------------------------------------ *)
(* D-rules: determinism.                                               *)

let d_rules =
  [
    Alcotest.test_case "D001 Random.self_init" `Quick
      (check_fires "D001" ~file:"lib/des/x.ml" "let () = Random.self_init ()");
    Alcotest.test_case "D001 Random.int" `Quick
      (check_fires "D001" ~file:"lib/des/x.ml" "let n = Random.int 6");
    Alcotest.test_case "D001 silent on Numerics.Rng" `Quick
      (check_clean ~file:"lib/des/x.ml"
         "let n rng = Numerics.Rng.uniform rng 0. 1.");
    Alcotest.test_case "D002 Unix.gettimeofday" `Quick
      (check_fires "D002" ~file:"lib/des/x.ml"
         "let t () = Unix.gettimeofday ()");
    Alcotest.test_case "D002 Sys.time" `Quick
      (check_fires "D002" ~file:"bin/x.ml" "let t () = Sys.time ()");
    Alcotest.test_case "D002 exempt inside Obs.Clock" `Quick
      (check_clean ~rule:"D002" ~file:"lib/obs/clock.ml"
         "let now () = Unix.gettimeofday ()");
  ]

(* ------------------------------------------------------------------ *)
(* U-rules: unsafe zones.                                              *)

let unsafe_src = "let f a = Array.unsafe_get a 0"

let u_rules =
  [
    Alcotest.test_case "U101 unsafe_get without zone" `Quick
      (check_fires "U101" ~file:"lib/kernels/x.ml" unsafe_src);
    Alcotest.test_case "U101 Bytes.unsafe_set without zone" `Quick
      (check_fires "U101" ~file:"lib/kernels/x.ml"
         "let f b = Bytes.unsafe_set b 0 'x'");
    Alcotest.test_case "U101 silent inside a zone" `Quick
      (check_clean ~rule:"U101" ~file:"lib/kernels/x.ml"
         ("[@@@nldl.unsafe_zone \"bounds checked in caller\"]\n" ^ unsafe_src));
    Alcotest.test_case "U102 zone without reason" `Quick
      (check_fires "U102" ~file:"lib/kernels/x.ml"
         ("[@@@nldl.unsafe_zone]\n" ^ unsafe_src));
    Alcotest.test_case "U103 stale zone" `Quick
      (check_fires "U103" ~file:"lib/kernels/x.ml"
         "[@@@nldl.unsafe_zone \"was needed once\"]\nlet f a = Array.get a 0");
    Alcotest.test_case "U103 silent when unsafe present" `Quick
      (check_clean ~rule:"U103" ~file:"lib/kernels/x.ml"
         ("[@@@nldl.unsafe_zone \"bounds checked in caller\"]\n" ^ unsafe_src));
  ]

(* ------------------------------------------------------------------ *)
(* S-rules: domain safety.                                             *)

let s_rules =
  [
    Alcotest.test_case "S201 top-level ref in lib/" `Quick
      (check_fires "S201" ~file:"lib/des/x.ml" "let counter = ref 0");
    Alcotest.test_case "S201 top-level Hashtbl in lib/" `Quick
      (check_fires "S201" ~file:"lib/des/x.ml"
         "let cache = Hashtbl.create 16");
    Alcotest.test_case "S201 silent under domain_safe" `Quick
      (check_clean ~rule:"S201" ~file:"lib/des/x.ml"
         "[@@@nldl.domain_safe \"guarded by mutex\"]\nlet counter = ref 0");
    Alcotest.test_case "S201 silent on local ref" `Quick
      (check_clean ~rule:"S201" ~file:"lib/des/x.ml"
         "let f () = let c = ref 0 in incr c; !c");
    Alcotest.test_case "S201 silent outside lib/" `Quick
      (check_clean ~rule:"S201" ~file:"bin/x.ml" "let counter = ref 0");
    Alcotest.test_case "S201 binding-level allow" `Quick
      (check_clean ~rule:"S201" ~file:"lib/des/x.ml"
         "let table = [| 1.; 2. |] [@@nldl.allow \"S201\"]");
  ]

(* ------------------------------------------------------------------ *)
(* H-rules: hygiene.                                                   *)

let h_rules =
  [
    Alcotest.test_case "H301 Obj.magic" `Quick
      (check_fires "H301" ~file:"lib/des/x.ml" "let f x = Obj.magic x");
    Alcotest.test_case "H302 float literal compare in lib/" `Quick
      (check_fires "H302" ~file:"lib/des/x.ml" "let z x = x = 0.");
    Alcotest.test_case "H302 silent in test/" `Quick
      (check_clean ~rule:"H302" ~file:"test/x.ml" "let z x = x = 0.");
    Alcotest.test_case "H302 silent on epsilon compare" `Quick
      (check_clean ~rule:"H302" ~file:"lib/des/x.ml"
         "let z x = Float.abs x < 1e-9");
    Alcotest.test_case "H303 Array.concat in kernels" `Quick
      (check_fires "H303" ~file:"lib/kernels/x.ml"
         "let f xs = Array.concat xs");
    Alcotest.test_case "H303 silent outside kernels" `Quick
      (check_clean ~rule:"H303" ~file:"lib/des/x.ml"
         "let f xs = Array.concat xs");
    Alcotest.test_case "H305 float make_matrix in kernels" `Quick
      (check_fires "H305" ~file:"lib/kernels/x.ml"
         "let m = Array.make_matrix 3 3 0.");
    Alcotest.test_case "H305 nested float rows in linalg" `Quick
      (check_fires "H305" ~file:"lib/linalg/x.ml"
         "let m n = Array.init n (fun _ -> Array.make n 0.)");
    Alcotest.test_case "H305 silent on int make_matrix" `Quick
      (check_clean ~rule:"H305" ~file:"lib/kernels/x.ml"
         "let m = Array.make_matrix 3 3 0");
    Alcotest.test_case "H305 silent outside the hot libs" `Quick
      (check_clean ~rule:"H305" ~file:"lib/des/x.ml"
         "let m = Array.make_matrix 3 3 0.");
    Alcotest.test_case "H305 tuple-returning slice helper" `Quick
      (check_fires "H305" ~file:"lib/kernels/x.ml"
         "let bucket_bounds t b = (t + b, t - b)");
    Alcotest.test_case "H305 int slice accessor is fine" `Quick
      (check_clean ~rule:"H305" ~file:"lib/kernels/x.ml"
         "let bucket_lo t b = t + b");
    Alcotest.test_case "H305 binding allow suppresses" `Quick
      (check_clean ~rule:"H305" ~file:"lib/kernels/x.ml"
         "let bucket_bounds t b = (t + b, t - b) [@@nldl.allow \"H305\"]");
    Alcotest.test_case "H306 Event_queue use in lib/" `Quick
      (check_fires "H306" ~file:"lib/partition/x.ml"
         "let q () = Des.Event_queue.create ()");
    Alcotest.test_case "H306 unqualified alias too" `Quick
      (check_fires "H306" ~file:"lib/des/x.ml"
         "let q () = Event_queue.create ()");
    Alcotest.test_case "H306 silent in its own module" `Quick
      (check_clean ~rule:"H306" ~file:"lib/des/event_queue.ml"
         "let q () = Event_queue.create ()");
    Alcotest.test_case "H306 silent in test/" `Quick
      (check_clean ~rule:"H306" ~file:"test/x.ml"
         "let q () = Des.Event_queue.create ()");
    Alcotest.test_case "H307 clock external in lib/" `Quick
      (check_fires "H307" ~file:"lib/des/x.ml"
         "external now : unit -> (int64[@unboxed]) = \"x\" \
          \"caml_my_clock_gettime\" [@@noalloc]");
    Alcotest.test_case "H307 gettimeofday external too" `Quick
      (check_fires "H307" ~file:"lib/numerics/x.ml"
         "external tod : unit -> float = \"caml_my_gettimeofday\"");
    Alcotest.test_case "H307 silent inside lib/obs" `Quick
      (check_clean ~rule:"H307" ~file:"lib/obs/clock.ml"
         "external now : unit -> (int64[@unboxed]) = \"x\" \
          \"caml_my_clock_gettime\" [@@noalloc]");
    Alcotest.test_case "H307 silent on non-clock external" `Quick
      (check_clean ~rule:"H307" ~file:"lib/kernels/x.ml"
         "external dim : t -> int = \"%caml_ba_dim_1\"");
    Alcotest.test_case "H307 hist array in instrumented lib" `Quick
      (check_fires "H307" ~file:"lib/mapreduce/x.ml"
         "let latency_hist = Array.make 64 0");
    Alcotest.test_case "H307 local hist array too" `Quick
      (check_fires "H307" ~file:"lib/des/x.ml"
         "let f () = let hist_buckets = Array.init 32 (fun _ -> 0) in hist_buckets");
    Alcotest.test_case "H307 silent in sortlib (algorithmic counts)" `Quick
      (check_clean ~rule:"H307" ~file:"lib/sortlib/x.ml"
         "let hist = Array.make 256 0");
    Alcotest.test_case "H307 silent on non-hist array" `Quick
      (check_clean ~rule:"H307" ~file:"lib/mapreduce/x.ml"
         "let run_start = Array.make 64 0.");
    Alcotest.test_case "H307 binding allow suppresses" `Quick
      (check_clean ~rule:"H307" ~file:"lib/des/x.ml"
         "let hist_oracle = Array.make 8 0 [@@nldl.allow \"H307\"]");
    Alcotest.test_case "H308 hand-rolled Json.Obj in experiments" `Quick
      (check_fires "H308" ~file:"lib/experiments/foo.ml"
         "let j rows = Obs.Json.Obj [ (\"rows\", Obs.Json.List rows) ]");
    Alcotest.test_case "H308 aliased Json constructor too" `Quick
      (check_fires "H308" ~file:"lib/experiments/foo.ml"
         "let j rows = Json.List rows");
    Alcotest.test_case "H308 silent in registry.ml" `Quick
      (check_clean ~rule:"H308" ~file:"lib/experiments/registry.ml"
         "let j = Obs.Json.Obj []");
    Alcotest.test_case "H308 silent outside experiments" `Quick
      (check_clean ~rule:"H308" ~file:"lib/des/x.ml"
         "let j = Obs.Json.Obj []");
    Alcotest.test_case "H308 binding allow suppresses" `Quick
      (check_clean ~rule:"H308" ~file:"lib/experiments/foo.ml"
         "let j = Obs.Json.Obj [] [@@nldl.allow \"H308\"]");
    Alcotest.test_case "X001 unknown nldl attribute" `Quick
      (check_fires "X001" ~file:"lib/des/x.ml"
         "[@@@nldl.unsfe_zone \"typo\"]\nlet x = 1");
    Alcotest.test_case "E000 parse failure" `Quick
      (check_fires "E000" ~file:"lib/des/x.ml" "let let let");
  ]

(* ------------------------------------------------------------------ *)
(* Suppression round-trips.                                            *)

let suppression =
  [
    Alcotest.test_case "expr allow suppresses H302" `Quick
      (check_clean ~rule:"H302" ~file:"lib/des/x.ml"
         "let z x = (x = 0.) [@nldl.allow \"H302\"]");
    Alcotest.test_case "wrong-id allow does not suppress" `Quick
      (check_fires "H302" ~file:"lib/des/x.ml"
         "let z x = (x = 0.) [@nldl.allow \"H301\"]");
    Alcotest.test_case "file-level allow suppresses everywhere" `Quick
      (check_clean ~rule:"H302" ~file:"lib/des/x.ml"
         "[@@@nldl.allow \"H302\"]\nlet z x = x = 0.\nlet y x = x <> 1.");
    Alcotest.test_case "allow is rule-scoped" `Quick (fun () ->
        (* The H302 allow must not swallow the sibling H301. *)
        let fs =
          Lint.Driver.lint_string ~file:"lib/des/x.ml"
            "[@@@nldl.allow \"H302\"]\nlet z x = x = 0.\nlet g x = Obj.magic x"
        in
        Alcotest.(check bool) "H301 survives" true (has "H301" fs);
        Alcotest.(check bool) "H302 gone" false (has "H302" fs));
  ]

(* ------------------------------------------------------------------ *)
(* Baseline semantics.                                                 *)

let finding rule file message =
  Lint.Finding.make ~rule ~file ~line:1 ~col:0 ~message

let baseline =
  [
    Alcotest.test_case "missing file is empty" `Quick (fun () ->
        Alcotest.(check int)
          "entries" 0
          (List.length (Lint.Baseline.load "/nonexistent/baseline.txt")));
    Alcotest.test_case "save/load round-trip" `Quick (fun () ->
        let path = Filename.temp_file "nldl_baseline" ".txt" in
        let fs =
          [ finding "U101" "lib/a.ml" "unsafe"; finding "H302" "lib/b.ml" "cmp" ]
        in
        Lint.Baseline.save path fs;
        let entries = Lint.Baseline.load path in
        Sys.remove path;
        Alcotest.(check int) "entries" 2 (List.length entries);
        let fresh, resolved = Lint.Baseline.diff ~baseline:entries fs in
        Alcotest.(check int) "fresh" 0 (List.length fresh);
        Alcotest.(check int) "resolved" 0 (List.length resolved));
    Alcotest.test_case "new finding is fresh" `Quick (fun () ->
        let entries = [] in
        let fresh, _ =
          Lint.Baseline.diff ~baseline:entries [ finding "U101" "lib/a.ml" "m" ]
        in
        Alcotest.(check int) "fresh" 1 (List.length fresh));
    Alcotest.test_case "fixed finding is resolved" `Quick (fun () ->
        let path = Filename.temp_file "nldl_baseline" ".txt" in
        Lint.Baseline.save path [ finding "U101" "lib/a.ml" "m" ];
        let entries = Lint.Baseline.load path in
        Sys.remove path;
        let fresh, resolved = Lint.Baseline.diff ~baseline:entries [] in
        Alcotest.(check int) "fresh" 0 (List.length fresh);
        Alcotest.(check int) "resolved" 1 (List.length resolved));
    Alcotest.test_case "bag semantics: duplicate not absorbed" `Quick
      (fun () ->
        let entries =
          [ { Lint.Baseline.rule = "U101"; file = "lib/a.ml"; line = 1; message = "m" } ]
        in
        let fresh, _ =
          Lint.Baseline.diff ~baseline:entries
            [ finding "U101" "lib/a.ml" "m"; finding "U101" "lib/a.ml" "m" ]
        in
        Alcotest.(check int) "second copy is fresh" 1 (List.length fresh));
    Alcotest.test_case "line change does not reopen" `Quick (fun () ->
        let entries =
          [ { Lint.Baseline.rule = "U101"; file = "lib/a.ml"; line = 7; message = "m" } ]
        in
        let fresh, _ =
          Lint.Baseline.diff ~baseline:entries
            [ Lint.Finding.make ~rule:"U101" ~file:"lib/a.ml" ~line:99 ~col:0 ~message:"m" ]
        in
        Alcotest.(check int) "absorbed despite line move" 0 (List.length fresh));
  ]

(* ------------------------------------------------------------------ *)
(* Driver over a synthetic tree (H304 + gate), and the real tree.      *)

let with_temp_tree f =
  let dir = Filename.temp_file "nldl_lint_tree" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Unix.mkdir (Filename.concat dir "lib") 0o755;
  Fun.protect
    ~finally:(fun () ->
      let rec rm p =
        if Sys.is_directory p then begin
          Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
          Unix.rmdir p
        end
        else Sys.remove p
      in
      rm dir)
    (fun () -> f dir)

let write path content =
  let oc = open_out path in
  output_string oc content;
  close_out oc

let rec find_repo_root dir =
  if
    Sys.file_exists (Filename.concat dir "dune-project")
    && Sys.file_exists (Filename.concat dir "lib")
  then Some dir
  else
    let parent = Filename.dirname dir in
    if parent = dir then None else find_repo_root parent

let driver =
  [
    Alcotest.test_case "H304 missing mli in lib tree" `Quick (fun () ->
        with_temp_tree (fun dir ->
            write (Filename.concat dir "lib/a.ml") "let x = 1\n";
            write (Filename.concat dir "lib/b.ml") "let y = 2\n";
            write (Filename.concat dir "lib/b.mli") "val y : int\n";
            let r = Lint.Driver.run ~root:dir ~roots:[ "lib" ] () in
            let h304 =
              List.filter (fun (f : Lint.Finding.t) -> f.rule = "H304") r.findings
            in
            Alcotest.(check int) "one missing mli" 1 (List.length h304);
            Alcotest.(check bool) "names a.ml" true
              (List.exists (fun (f : Lint.Finding.t) -> f.file = "lib/a.ml") h304)));
    Alcotest.test_case "update-baseline then gate passes" `Quick (fun () ->
        with_temp_tree (fun dir ->
            write (Filename.concat dir "lib/a.ml") "let c = ref 0\n";
            write (Filename.concat dir "lib/a.mli") "val c : int ref\n";
            let r1 = Lint.Driver.run ~root:dir ~roots:[ "lib" ] () in
            Alcotest.(check bool) "gate fails first" false (Lint.Driver.gate_ok r1);
            let r2 =
              Lint.Driver.run ~root:dir ~roots:[ "lib" ] ~update_baseline:true ()
            in
            Alcotest.(check bool) "baseline updated" true r2.updated;
            let r3 = Lint.Driver.run ~root:dir ~roots:[ "lib" ] () in
            Alcotest.(check bool) "gate passes after update" true
              (Lint.Driver.gate_ok r3)));
    Alcotest.test_case "real tree: no new findings" `Quick (fun () ->
        (* dune runtest runs from _build/default/test; walk up to the
           source root so the check covers the committed tree. *)
        match find_repo_root (Sys.getcwd ()) with
        | None -> ()
        | Some root ->
            let r = Lint.Driver.run ~root ~roots:[ "lib"; "bin" ] () in
            Alcotest.(check (list string))
              "no new findings"
              []
              (List.map Lint.Finding.to_string r.fresh));
  ]

let suites =
  [
    ("lint.d_rules", d_rules);
    ("lint.u_rules", u_rules);
    ("lint.s_rules", s_rules);
    ("lint.h_rules", h_rules);
    ("lint.suppression", suppression);
    ("lint.baseline", baseline);
    ("lint.driver", driver);
  ]
