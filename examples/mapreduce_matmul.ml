(* MapReduce matrix multiplication with replicated inputs (paper §1.1,
   §2, §4.2): the N² dataset is inflated to N³/chunk map inputs, and the
   demand-driven scheduler pays the redundancy; affinity-aware
   scheduling (the paper's concluding proposal) recovers part of it.

   Run:  dune exec examples/mapreduce_matmul.exe *)

let () =
  let n = 64 and chunk = 8 in
  let rng = Core.Rng.create ~seed:12 () in
  let a = Core.Matrix.random rng ~rows:n ~cols:n in
  let b = Core.Matrix.random rng ~rows:n ~cols:n in
  let star = Core.Star.of_speeds [ 1.; 2.; 4.; 8. ] in

  Printf.printf "C = A x B with n = %d, block size %d, on speeds 1,2,4,8\n\n" n chunk;
  Printf.printf "Replication factor of the map input: n/chunk = %.0f\n"
    (Core.Mr_jobs.replication_factor ~n ~chunk);

  let job = Core.Mr_jobs.matmul_replicated ~a:(Core.Matrix.get a) ~b:(Core.Matrix.get b) ~n ~chunk in
  Printf.printf "Map tasks: %d (one per block triple)\n\n" (Array.length job.Core.Mr_engine.tasks);

  let run policy name =
    let config = { Core.Mr_scheduler.default_config with policy } in
    let result = Core.Mr_engine.run ~config star job ~reduce:(fun _ vs -> List.fold_left ( +. ) 0. vs) in
    Printf.printf "%-22s map comm %10.0f   shuffle %8.0f   makespan %8.1f\n" name
      result.Core.Mr_engine.map.Core.Mr_scheduler.communication
      result.Core.Mr_engine.shuffle.Core.Mr_shuffle.volume result.Core.Mr_engine.makespan;
    result
  in
  let fifo = run Core.Mr_scheduler.Fifo "demand-driven (FIFO):" in
  let affinity = run Core.Mr_scheduler.Affinity "affinity-aware:" in

  (* Verify the MapReduce output against the direct product. *)
  let reference = Core.Matrix.mul a b in
  let worst = ref 0. in
  List.iter
    (fun ((i, j), v) ->
      let d = Float.abs (v -. Core.Matrix.get reference i j) in
      if d > !worst then worst := d)
    fifo.Core.Mr_engine.output;
  Printf.printf "\nMapReduce result matches direct multiplication: max |diff| = %.2e\n" !worst;

  (* And the zone-based distribution the paper advocates. *)
  let zones = Core.Zone.for_platform star ~n in
  let stats = Core.Matmul.distributed ~zones a b in
  Printf.printf "\nHeterogeneity-aware zones (outer-product algorithm of Fig. 3):\n";
  Printf.printf "  communication %d words = n x sum of half-perimeters (%d)\n"
    stats.Core.Matmul.total
    (Core.Matmul.predicted_communication ~zones ~n);
  Printf.printf "  vs %.0f (FIFO MapReduce) and %.0f (affinity MapReduce)\n"
    fifo.Core.Mr_engine.map.Core.Mr_scheduler.communication
    affinity.Core.Mr_engine.map.Core.Mr_scheduler.communication
