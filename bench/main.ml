(* Benchmark harness.

   Two parts:
   1. Bechamel micro-benchmarks of the core kernels (one Test.make per
      kernel, grouped in a single executable).
   2. The paper-reproduction harness: prints the rows/series of every
      experiment of DESIGN.md (E1, E2, E3, Figures 4a-4c, and the
      affinity ablation).

   Usage: main.exe [--quick]   (--quick cuts trial counts for CI)

   In addition to the human-readable report, the harness writes
   BENCH_results.json (kernel name -> ns/run, pool overhead, multicore
   speedup, Fig. 4 domain-scaling) so the perf trajectory is tracked
   across PRs. *)

open Bechamel
open Toolkit

let flag_present f = Array.exists (fun a -> a = f) Sys.argv
let quick = flag_present "--quick"

(* [--check-alloc PATH]: after measuring, diff the per-kernel allocation
   counters against the committed baseline and exit non-zero on >10%
   growth.  [--write-alloc-baseline PATH]: regenerate that baseline. *)
let arg_value flag =
  let rec find = function
    | f :: value :: _ when f = flag -> Some value
    | _ :: rest -> find rest
    | [] -> None
  in
  find (Array.to_list Sys.argv)

let check_alloc_path = arg_value "--check-alloc"
let write_alloc_path = arg_value "--write-alloc-baseline"

(* [--check-throughput PATH]: gate the discrete-event core's events/sec
   against the committed BENCH_results.json (PATH usually names that
   very file, so it is read eagerly here — before the run overwrites it
   at the end). *)
let check_throughput_path = arg_value "--check-throughput"

(* [--check-overhead]: gate the observability tax measured by the
   obs_overhead section — full instrumentation must cost <= 5% of the
   big-MapReduce run, and the disabled path <= 1%.  Both are ratios of
   timings taken in this very process, so machine speed cancels out. *)
let check_overhead = flag_present "--check-overhead"

(* [--check-serve-throughput]: gate the serve_throughput section — warm
   (memo-hit) queries must answer at >= 10x the cold (solve) rate.  A
   ratio of two rates measured in this very process, so machine speed
   cancels out. *)
let check_serve = flag_present "--check-serve-throughput"

(* [--check-lint-time]: gate the lint_time section — the two-phase
   pipeline (callgraph + escape + R-rules) must cost <= 2x the PR-5
   per-file baseline on a cold cache, and a warm cache must replay
   phase 1 at >= 5x the cold rate.  Both are ratios of timings taken in
   this very process, so machine speed cancels out. *)
let check_lint_time = flag_present "--check-lint-time"

let throughput_baseline =
  match check_throughput_path with
  | None -> None
  | Some path ->
      let ic = open_in_bin path in
      let raw = really_input_string ic (in_channel_length ic) in
      close_in ic;
      (match Obs.Json.of_string raw with
      | Ok json -> Some (path, json)
      | Error e -> failwith (Printf.sprintf "--check-throughput %s: %s" path e))

(* [--trace [FILE]]: record Obs spans for the whole run and write a
   Chrome trace-event JSON.  [--metrics]: enable the metrics registry
   and embed the merged snapshot in BENCH_results.json. *)
let trace_path =
  if flag_present "--trace" then
    match arg_value "--trace" with
    | Some v when String.length v > 0 && v.[0] <> '-' -> Some v
    | _ -> Some "bench_trace.json"
  else None

let metrics_on = flag_present "--metrics"

let elapsed_s = Obs.Clock.elapsed_s

(* --- Part 1: Bechamel micro-benchmarks --------------------------------- *)

let bench_platform p =
  let rng = Core.Rng.create ~seed:99 () in
  Core.Profiles.generate rng ~p Core.Profiles.paper_lognormal

let test_peri_sum =
  let star = bench_platform 100 in
  let areas = Core.Star.relative_speeds star in
  Test.make ~name:"peri-sum DP (p=100)"
    (Staged.stage (fun () -> ignore (Core.Column_partition.peri_sum ~areas)))

let test_peri_max =
  let star = bench_platform 100 in
  let areas = Core.Star.relative_speeds star in
  Test.make ~name:"peri-max DP (p=100)"
    (Staged.stage (fun () -> ignore (Core.Column_partition.peri_max ~areas)))

let test_demand_driven =
  let star = bench_platform 100 in
  Test.make ~name:"demand-driven blocks (p=100, k=2)"
    (Staged.stage (fun () -> ignore (Core.Block_hom.demand_driven star ~n:1e6 ~k:2)))

let test_nonlinear_solver =
  let star = bench_platform 64 in
  Test.make ~name:"nonlinear DLT solve (p=64, alpha=2)"
    (Staged.stage (fun () ->
         ignore
           (Core.Nonlinear_dlt.equal_finish_allocation Core.Dlt_schedule.Parallel star
              (Core.Cost_model.Power 2.) ~total:1e4)))

let test_sample_sort =
  let rng = Core.Rng.create ~seed:4 () in
  let keys = Array.init 100_000 (fun _ -> Core.Rng.float rng) in
  Test.make ~name:"sample sort (N=1e5, p=16)"
    (Staged.stage (fun () ->
         let rng = Core.Rng.create ~seed:5 () in
         ignore (Core.Sample_sort.sort ~cmp:Float.compare rng keys ~p:16)))

let test_distributed_matmul =
  let rng = Core.Rng.create ~seed:6 () in
  let n = 96 in
  let a = Core.Matrix.random rng ~rows:n ~cols:n in
  let b = Core.Matrix.random rng ~rows:n ~cols:n in
  let star = bench_platform 8 in
  let zones = Core.Zone.for_platform star ~n in
  Test.make ~name:"distributed matmul (n=96, p=8)"
    (Staged.stage (fun () -> ignore (Core.Matmul.distributed ~zones a b)))

let test_event_queue =
  Test.make ~name:"event queue push+pop (10k)"
    (Staged.stage (fun () ->
         let q = Des.Event_queue.create () in
         for i = 0 to 9_999 do
           Des.Event_queue.push q ~priority:(float_of_int ((i * 7919) mod 10_000)) i
         done;
         while not (Des.Event_queue.is_empty q) do
           ignore (Des.Event_queue.pop q)
         done))

let test_event_heap =
  (* [exercise] drives push+pop from inside the module, so the number
     does not depend on cross-module inlining (dev profiles pass
     [-opaque], which would box one float per out-of-module push). *)
  Test.make ~name:"event heap push+pop (10k)"
    (Staged.stage (fun () ->
         let h = Des.Event_heap.create ~initial_capacity:10_000 () in
         Des.Event_heap.exercise h ~rounds:1 ~batch:10_000))

let test_strassen =
  let rng = Core.Rng.create ~seed:7 () in
  let n = 128 in
  let a = Core.Matrix.random rng ~rows:n ~cols:n in
  let b = Core.Matrix.random rng ~rows:n ~cols:n in
  Test.make ~name:"strassen (n=128, cutoff=32)"
    (Staged.stage (fun () -> ignore (Core.Strassen.multiply ~cutoff:32 a b)))

let test_cannon =
  let rng = Core.Rng.create ~seed:9 () in
  let n = 96 in
  let a = Core.Matrix.random rng ~rows:n ~cols:n in
  let b = Core.Matrix.random rng ~rows:n ~cols:n in
  Test.make ~name:"cannon (n=96, 4x4 grid)"
    (Staged.stage (fun () -> ignore (Core.Cannon.distributed ~grid:4 a b)))

let test_histogram_sort =
  let rng = Core.Rng.create ~seed:10 () in
  let keys = Array.init 100_000 (fun _ -> Core.Rng.float rng) in
  Test.make ~name:"histogram splitters (N=1e5, p=16)"
    (Staged.stage (fun () ->
         ignore (Core.Histogram_sort.splitters ~tolerance:0.01 keys ~p:16)))

let test_lu =
  let rng = Core.Rng.create ~seed:11 () in
  let n = 96 in
  let base = Core.Matrix.random rng ~rows:n ~cols:n in
  let a = Core.Matrix.add base (Core.Matrix.scale (float_of_int n) (Core.Matrix.identity n)) in
  Test.make ~name:"LU factorize (n=96, block=32)"
    (Staged.stage (fun () -> ignore (Core.Lu.factorize ~block:32 a)))

let test_cholesky =
  let rng = Core.Rng.create ~seed:12 () in
  let n = 96 in
  let m = Core.Matrix.random rng ~rows:n ~cols:n in
  let a =
    Core.Matrix.add
      (Core.Matrix.mul m (Core.Matrix.transpose m))
      (Core.Matrix.scale (float_of_int n) (Core.Matrix.identity n))
  in
  Test.make ~name:"Cholesky factorize (n=96, block=32)"
    (Staged.stage (fun () -> ignore (Core.Cholesky.factorize ~block:32 a)))

let test_karatsuba =
  let rng = Core.Rng.create ~seed:13 () in
  let a = Array.init 1024 (fun _ -> Core.Rng.uniform rng (-1.) 1.) in
  let b = Array.init 1024 (fun _ -> Core.Rng.uniform rng (-1.) 1.) in
  Test.make ~name:"karatsuba (n=1024)"
    (Staged.stage (fun () -> ignore (Core.Poly.karatsuba ~cutoff:32 a b)))

let test_psrs =
  let rng = Core.Rng.create ~seed:14 () in
  let keys = Array.init 100_000 (fun _ -> Core.Rng.float rng) in
  Test.make ~name:"PSRS sort (N=1e5, p=16)"
    (Staged.stage (fun () -> ignore (Core.Psrs.sort keys ~p:16)))

let test_mapreduce =
  let rng = Core.Rng.create ~seed:8 () in
  let a = Array.init 256 (fun _ -> Core.Rng.float rng) in
  let b = Array.init 256 (fun _ -> Core.Rng.float rng) in
  let star = bench_platform 8 in
  Test.make ~name:"MapReduce outer-product map phase (n=256, p=8)"
    (Staged.stage (fun () ->
         let job = Core.Mr_jobs.outer_product ~a ~b ~chunk:32 in
         ignore
           (Core.Mr_scheduler.run star ~tasks:job.Core.Mr_engine.tasks
              ~block_size:job.Core.Mr_engine.block_size)))

let report_multicore () =
  (* Real-parallelism check of phase 3 (§3): host-dependent, so
     reported rather than benchmarked. *)
  let domains = Core.Parallel.default_domains () in
  let seq, par, speedup =
    Core.Multicore_sort.speedup (Core.Rng.create ~seed:77 ()) ~n:500_000 ~p:16
  in
  Printf.printf
    "\nMulticore sample sort (N=5e5, p=16, %d domains): %.3fs sequential, %.3fs parallel \
     (speedup %.2fx)\n%!"
    domains seq par speedup;
  Obs.Json.Obj
    [
      ("domains", Obs.Json.Int domains);
      ("sequential_s", Obs.Json.Float seq);
      ("parallel_s", Obs.Json.Float par);
      ("speedup", Obs.Json.Float speedup);
    ]

let report_sort_throughput () =
  (* Headline keys/sec of the flat-buffer sort pipelines, median of >= 3
     interleaved trials so drift hits every variant equally. *)
  let n = if quick then 200_000 else 1_000_000 in
  let p = 16 in
  let trials = if quick then 3 else 5 in
  let rng = Core.Rng.create ~seed:31 () in
  let keys = Array.init n (fun _ -> Core.Rng.float rng) in
  let domains = Core.Parallel.default_domains () in
  Core.Parallel.warm_up ~domains ();
  let median samples =
    let sorted = Array.copy samples in
    Array.sort Float.compare sorted;
    sorted.(Array.length sorted / 2)
  in
  let pipelines =
    [
      ( "multicore",
        fun () -> ignore (Core.Multicore_sort.sort ~domains (Core.Rng.create ~seed:32 ()) keys ~p) );
      ("psrs", fun () -> ignore (Core.Psrs.sort keys ~p));
      ("histogram", fun () -> ignore (Core.Histogram_sort.sort keys ~p));
    ]
  in
  (* Untimed warm-up of each pipeline, then interleaved trials. *)
  List.iter (fun (_, f) -> f ()) pipelines;
  let times = List.map (fun (name, _) -> (name, Array.make trials 0.)) pipelines in
  for t = 0 to trials - 1 do
    List.iter
      (fun (name, f) ->
        let (), s = elapsed_s f in
        (List.assoc name times).(t) <- s)
      pipelines
  done;
  Experiments.Report.section
    (Printf.sprintf "Sort throughput (N=%d, p=%d, median of %d trials)" n p trials);
  let table = Numerics.Ascii_table.create ~headers:[ "pipeline"; "keys/sec"; "seconds" ] in
  Numerics.Ascii_table.set_align table [ Numerics.Ascii_table.Left; Right; Right ];
  let rows =
    List.map
      (fun (name, samples) ->
        let seconds = median samples in
        let throughput = float_of_int n /. seconds in
        Numerics.Ascii_table.add_row table
          [ name; Printf.sprintf "%.3e" throughput; Printf.sprintf "%.3f" seconds ];
        ( name,
          Obs.Json.Obj
            [
              ("keys_per_sec", Obs.Json.Float throughput);
              ("median_seconds", Obs.Json.Float seconds);
            ] ))
      times
  in
  Numerics.Ascii_table.print table;
  Obs.Json.Obj
    ([ ("n_keys", Obs.Json.Int n); ("p", Obs.Json.Int p); ("trials", Obs.Json.Int trials) ] @ rows)

let report_pool_overhead () =
  (* Tentpole check: submitting to the persistent pool must beat paying
     a Domain.spawn/join round-trip per call. *)
  let d = max 2 (min 8 (Core.Parallel.default_domains ())) in
  let iters = if quick then 200 else 1000 in
  let pool = Core.Pool.create ~domains:d () in
  Core.Pool.parallel_for pool d (fun _ -> ());
  let (), pool_s =
    elapsed_s (fun () ->
        for _ = 1 to iters do
          Core.Pool.parallel_for pool d (fun _ -> ())
        done)
  in
  let (), spawn_s =
    elapsed_s (fun () ->
        for _ = 1 to iters do
          let spawned = List.init (d - 1) (fun _ -> Domain.spawn (fun () -> ())) in
          List.iter Domain.join spawned
        done)
  in
  Core.Pool.teardown pool;
  let pool_ns = pool_s *. 1e9 /. float_of_int iters in
  let spawn_ns = spawn_s *. 1e9 /. float_of_int iters in
  Printf.printf
    "\nPool dispatch overhead (%d domains, %d calls): %.1f us/call pooled vs %.1f us/call \
     spawn-per-call (%.1fx less)\n%!"
    d iters (pool_ns /. 1e3) (spawn_ns /. 1e3)
    (spawn_ns /. pool_ns);
  Obs.Json.Obj
    [
      ("domains", Obs.Json.Int d);
      ("iterations", Obs.Json.Int iters);
      ("pool_ns_per_call", Obs.Json.Float pool_ns);
      ("spawn_ns_per_call", Obs.Json.Float spawn_ns);
      ("overhead_ratio", Obs.Json.Float (spawn_ns /. pool_ns));
    ]

let report_fig4_scaling () =
  (* Domain-count scaling of the Fig. 4 Monte-Carlo sweep, with an
     output-identity check: the pre-split per-trial RNGs make the rows
     byte-identical at any domain count.

     Each domain count is timed as the median of three sweeps after an
     untimed warm-up: a single-shot timing once recorded a phantom
     0.786x "regression" at 2 domains that median sampling does not
     reproduce (see EXPERIMENTS.md).  Domain counts above the
     hardware's recommended count are still measured (the series keeps
     its shape across hosts) but flagged [oversubscribed]: on such
     hosts the extra domain can only time-slice, so speedup ~1.0 is
     the expected reading, not a regression. *)
  let trials = if quick then 10 else 100 in
  let processor_counts = if quick then [ 10; 20; 40 ] else Experiments.Fig4.default_processor_counts in
  let profile = Core.Profiles.paper_lognormal in
  let max_d = Core.Parallel.default_domains () in
  let domain_counts =
    List.sort_uniq compare (List.filter (fun d -> d <= max 2 max_d) [ 1; 2; 4; max_d ])
  in
  Core.Parallel.warm_up ~domains:(List.fold_left max 1 domain_counts) ();
  let runs =
    List.map
      (fun d ->
        let points =
          Experiments.Fig4.sweep ~processor_counts ~trials ~domains:d profile
        in
        let times =
          Array.init 3 (fun _ ->
              let _, s =
                elapsed_s (fun () ->
                    Experiments.Fig4.sweep ~processor_counts ~trials ~domains:d profile)
              in
              s)
        in
        Array.sort Float.compare times;
        (d, times.(1), Experiments.Fig4.csv points))
      domain_counts
  in
  let _, base_seconds, base_csv = List.hd runs in
  let identical =
    List.for_all (fun (_, _, csv) -> csv = base_csv) runs
  in
  Experiments.Report.section
    (Printf.sprintf "Fig. 4 sweep domain scaling (lognormal, %d trials/point, %d hardware domains)"
       trials max_d);
  let table =
    Numerics.Ascii_table.create ~headers:[ "domains"; "seconds"; "speedup"; "output" ]
  in
  List.iter
    (fun (d, seconds, csv) ->
      Numerics.Ascii_table.add_row table
        [
          (if d > max_d then Printf.sprintf "%d (oversubscribed)" d else string_of_int d);
          Printf.sprintf "%.3f" seconds;
          Printf.sprintf "%.2fx" (base_seconds /. seconds);
          (if csv = base_csv then "identical" else "DIFFERS");
        ])
    runs;
  Numerics.Ascii_table.print table;
  if not identical then
    Printf.printf "WARNING: Fig. 4 output changed with the domain count!\n%!";
  Obs.Json.Obj
    [
      ("trials", Obs.Json.Int trials);
      ("hardware_domains", Obs.Json.Int max_d);
      ("outputs_identical", Obs.Json.Bool identical);
      ( "runs",
        Obs.Json.List
          (List.map
             (fun (d, seconds, _) ->
               Obs.Json.Obj
                 [
                   ("domains", Obs.Json.Int d);
                   ("seconds", Obs.Json.Float seconds);
                   ("speedup", Obs.Json.Float (base_seconds /. seconds));
                   ("oversubscribed", Obs.Json.Bool (d > max_d));
                 ])
             runs) );
    ]

(* --- Discrete-event core throughput ------------------------------------ *)

(* Sustained seconds per [n]-push-[n]-pop cycle: median of [samples]
   timed blocks, GC work left inside the timed region.  Bechamel-style
   stabilized sampling would let the allocating queue dodge its
   collections, a mean would let one descheduling hiccup sink the gated
   rate; the median of sustained blocks avoids both.  One untimed
   warm-up call grows the buffers first. *)
let sustained ~samples ~rounds f =
  f ();
  let times =
    Array.init samples (fun _ ->
        let (), s =
          elapsed_s (fun () ->
              for _ = 1 to rounds do
                f ()
              done)
        in
        s /. float_of_int rounds)
  in
  Array.sort Float.compare times;
  times.(samples / 2)

let rounds_for n = max 1 (400_000 / n)

let time_heap_push_pop n =
  let h = Des.Event_heap.create ~initial_capacity:n () in
  sustained ~samples:(if n >= 1_000_000 then 3 else 5) ~rounds:(rounds_for n)
    (fun () -> Des.Event_heap.exercise h ~rounds:1 ~batch:n)

let time_queue_push_pop n =
  let run () =
    let q = Des.Event_queue.create () in
    for i = 0 to n - 1 do
      Des.Event_queue.push q ~priority:(float_of_int ((i * 7919) land 0xFFFFF)) i
    done;
    while not (Des.Event_queue.is_empty q) do
      ignore (Des.Event_queue.pop q)
    done
  in
  sustained ~samples:3 ~rounds:(rounds_for n) run

(* The fault-injected big-MapReduce workload shared by the
   [des_throughput] and [obs_overhead] sections: 10^5 uniform workers,
   10^6 unit tasks, the ISSUE 7 headline scale.  Rebuilding the inputs
   per section keeps each section self-contained; the returned thunk
   runs one deterministic simulation. *)
let big_mr_workers = 100_000
let big_mr_tasks = 1_000_000

let big_mr_run () =
  let star = Core.Star.of_speeds (List.init big_mr_workers (fun _ -> 1.)) in
  let tasks =
    Array.init big_mr_tasks (fun i -> Core.Mr_task.make ~id:i ~data_ids:[| i |] ~cost:1.)
  in
  let faults =
    Fault.Plan.generate
      ~rng:(Core.Rng.create ~seed:42 ())
      ~p:big_mr_workers ~horizon:20. ~crash_rate:0.001 ~slowdown_rate:0.01
      ~fetch_failure:0.01 ()
  in
  fun () -> Core.Mr_scheduler.run ~faults star ~tasks ~block_size:(fun _ -> 1.)

let report_des_throughput ~best_mr_seconds () =
  Experiments.Report.section "Discrete-event core throughput (events/sec)";
  (* Heap vs boxed queue, like for like, at both scales.  The 10k point
     is the historical micro-benchmark; the 1M point is what this PR is
     for — the boxed queue collapses there (deep boxed comparisons plus
     a multi-megabyte live set the minor GC walks), which is exactly the
     gap the flat heap closes. *)
  let rate_of n s = float_of_int (2 * n) /. s in
  let heap_s_10k = time_heap_push_pop 10_000 in
  let queue_s_10k = time_queue_push_pop 10_000 in
  let heap_s_1m = time_heap_push_pop 1_000_000 in
  let queue_s_1m = time_queue_push_pop 1_000_000 in
  let heap_rate_10k = rate_of 10_000 heap_s_10k in
  let queue_rate_10k = rate_of 10_000 queue_s_10k in
  let heap_rate_1m = rate_of 1_000_000 heap_s_1m in
  let queue_rate_1m = rate_of 1_000_000 queue_s_1m in
  let speedup_10k = heap_rate_10k /. queue_rate_10k in
  let speedup_1m = heap_rate_1m /. queue_rate_1m in
  let table =
    Numerics.Ascii_table.create ~headers:[ "workload"; "events/sec"; "seconds" ]
  in
  Numerics.Ascii_table.set_align table [ Numerics.Ascii_table.Left; Right; Right ];
  List.iter
    (fun (name, r, s) ->
      Numerics.Ascii_table.add_row table
        [ name; Printf.sprintf "%.3e" r; Printf.sprintf "%.4f" s ])
    [
      ("heap push+pop (10000)", heap_rate_10k, heap_s_10k);
      ("queue push+pop (10000)", queue_rate_10k, queue_s_10k);
      ("heap push+pop (1000000)", heap_rate_1m, heap_s_1m);
      ("queue push+pop (1000000)", queue_rate_1m, queue_s_1m);
    ];
  (* Fault-injected MapReduce at paper-sweep scale: the end-to-end
     events/sec of the rewritten scheduler, [events_processed] over wall
     time.  This one does NOT shrink in --quick — 10^5 workers x 10^6
     tasks is the ISSUE 7 headline and the whole run is ~3s, so CI and
     the committed artifact always gate like-for-like at full scale
     (the rate is scale-dependent: the 10x smaller run clocks ~3x
     higher events/sec on a smaller working set).  Low fault rates keep
     the workload dominated by regular dispatch: ~0.1% of workers crash
     (with recovery), 1% are slowed, and every link drops 1% of
     fetches. *)
  let workers = big_mr_workers in
  let n_tasks = big_mr_tasks in
  let run_mr = big_mr_run () in
  (* The run is deterministic, so timing the same simulation twice and
     keeping the faster pass is pure noise control; the [full_major]
     keeps garbage from the queue loop above (and from the first pass)
     out of the timed region.  [best_mr_seconds] folds in the best of
     the obs_overhead section's passes over the identical workload, so
     the gated headline is a min over ~8 timings spread across the
     process instead of 2 adjacent ones — a transient slow window on a
     shared runner can no longer sink the committed-baseline gate. *)
  Gc.full_major ();
  let outcome, s1 = elapsed_s run_mr in
  Gc.full_major ();
  let _, s2 = elapsed_s run_mr in
  let seconds = Float.min (Float.min s1 s2) best_mr_seconds in
  let events = outcome.Core.Mr_scheduler.events_processed in
  let mr_rate = float_of_int events /. seconds in
  Numerics.Ascii_table.add_row table
    [
      Printf.sprintf "mapreduce %dx%d (faults on)" workers n_tasks;
      Printf.sprintf "%.3e" mr_rate;
      Printf.sprintf "%.4f" seconds;
    ];
  Numerics.Ascii_table.print table;
  Printf.printf
    "Heap vs queue: %.1fx at 10k, %.1fx at 1M; large MapReduce: %d events, makespan \
     %.2f, %d retries, %d crashes, %d unfinished\n%!"
    speedup_10k speedup_1m events outcome.Core.Mr_scheduler.makespan
    outcome.Core.Mr_scheduler.retries outcome.Core.Mr_scheduler.crashes_survived
    (List.length outcome.Core.Mr_scheduler.unfinished);
  Obs.Json.Obj
    [
      ("heap_ops_per_sec_10k", Obs.Json.Float heap_rate_10k);
      ("heap_ops_per_sec_1m", Obs.Json.Float heap_rate_1m);
      ("queue_ops_per_sec_10k", Obs.Json.Float queue_rate_10k);
      ("queue_ops_per_sec_1m", Obs.Json.Float queue_rate_1m);
      ("heap_vs_queue_speedup_10k", Obs.Json.Float speedup_10k);
      ("heap_vs_queue_speedup_1m", Obs.Json.Float speedup_1m);
      ( "mapreduce",
        Obs.Json.Obj
          [
            ("workers", Obs.Json.Int workers);
            ("tasks", Obs.Json.Int n_tasks);
            ("events_processed", Obs.Json.Int events);
            ("seconds", Obs.Json.Float seconds);
            ("events_per_sec", Obs.Json.Float mr_rate);
            ("makespan", Obs.Json.Float outcome.Core.Mr_scheduler.makespan);
            ("retries", Obs.Json.Int outcome.Core.Mr_scheduler.retries);
            ( "crashes_survived",
              Obs.Json.Int outcome.Core.Mr_scheduler.crashes_survived );
            ( "unfinished",
              Obs.Json.Int (List.length outcome.Core.Mr_scheduler.unfinished) );
          ] );
    ]

(* --- Observability overhead -------------------------------------------- *)

(* Run the big MapReduce with the full observability stack forced off,
   then forced on (metrics + histograms + tracing), interleaved
   min-of-2 on each side — same process, same deterministic workload,
   back to back, so the ratio is the instrumentation tax and nothing
   else.  The section sets the flags itself on both sides: it must not
   inherit --metrics, or the "disabled" baseline would be instrumented
   too and the ratio would gate nothing.

   The disabled path is too cheap to resolve that way (the gate is 1%
   of ~600ns/event), so it gets a microbenchmark instead: the
   instrumented hot loops hoist one [obs_on] bool per run and guard
   each record site with a plain conditional on it, so the disabled
   per-event cost is a handful of load+branch tests.  We time a tight
   loop with and without that exact shape and charge three such tests
   per event (an upper bound: the scheduler executes at most ~3 gated
   sites per event). *)
let report_obs_overhead () =
  Experiments.Report.section "Observability overhead (big MapReduce, full stack on)";
  let run_mr = big_mr_run () in
  let prev_m = Obs.Metrics.enabled () in
  let prev_h = Obs.Hist.enabled () in
  let prev_t = Obs.Trace.enabled () in
  let set_all on =
    Obs.Metrics.set_enabled on;
    Obs.Hist.set_enabled on;
    Obs.Trace.set_enabled on
  in
  let timed_pass on =
    set_all on;
    Gc.full_major ();
    let outcome, s = elapsed_s run_mr in
    (outcome.Core.Mr_scheduler.events_processed, s)
  in
  (* Three interleaved disabled/enabled pairs, min per side: the min is
     the noise-robust estimator for a ratio gate, and interleaving keeps
     slow drift (thermal, page cache) from biasing one side. *)
  let pairs = 3 in
  let events = ref 0 in
  let disabled_seconds = ref infinity in
  let enabled_seconds = ref infinity in
  for _ = 1 to pairs do
    let ev, d = timed_pass false in
    events := ev;
    if d < !disabled_seconds then disabled_seconds := d;
    let _, e = timed_pass true in
    if e < !enabled_seconds then enabled_seconds := e
  done;
  Obs.Metrics.set_enabled prev_m;
  Obs.Hist.set_enabled prev_h;
  Obs.Trace.set_enabled prev_t;
  let events = !events in
  let disabled_seconds = !disabled_seconds in
  let enabled_seconds = !enabled_seconds in
  let overhead_ratio = enabled_seconds /. disabled_seconds in
  (* Disabled-path microbenchmark.  [gate] is a ref so the load cannot
     be hoisted out of the loop, and it is plain [false] — exactly the
     hoisted [obs_on] the instrumented loops test — so the guarded
     record never fires, just like a disabled run. *)
  let h_probe = Obs.Hist.create "bench.obs_probe" in
  let sh_probe = Obs.Hist.shard h_probe in
  let gate = ref false in
  let iters = 20_000_000 in
  let time_loop body =
    let best = ref infinity in
    for _ = 1 to 3 do
      let _, s = elapsed_s body in
      if s < !best then best := s
    done;
    !best
  in
  let base_s =
    time_loop (fun () ->
        let acc = ref 0 in
        for i = 0 to iters - 1 do
          acc := !acc + (i land 1023)
        done;
        ignore (Sys.opaque_identity !acc))
  in
  let gated_s =
    time_loop (fun () ->
        let acc = ref 0 in
        for i = 0 to iters - 1 do
          if !gate then Obs.Hist.record_into sh_probe i;
          acc := !acc + (i land 1023)
        done;
        ignore (Sys.opaque_identity !acc))
  in
  let gated_ns = Float.max 0. ((gated_s -. base_s) /. float_of_int iters *. 1e9) in
  let ns_per_event = disabled_seconds /. float_of_int events *. 1e9 in
  let disabled_fraction = gated_ns *. 3. /. ns_per_event in
  Printf.printf
    "enabled %.4fs vs disabled %.4fs: %.2f%% overhead (full stack)\n\
     disabled path: %.3f ns/gated check, %.1f ns/event -> %.3f%% charged at 3 \
     checks/event\n\
     %!"
    enabled_seconds disabled_seconds
    ((overhead_ratio -. 1.) *. 100.)
    gated_ns ns_per_event (disabled_fraction *. 100.);
  ( Obs.Json.Obj
      [
        ("disabled_seconds", Obs.Json.Float disabled_seconds);
        ("enabled_seconds", Obs.Json.Float enabled_seconds);
        ("overhead_ratio", Obs.Json.Float overhead_ratio);
        ("gated_check_ns", Obs.Json.Float gated_ns);
        ("ns_per_event", Obs.Json.Float ns_per_event);
        ("disabled_path_fraction", Obs.Json.Float disabled_fraction);
      ],
    Float.min disabled_seconds enabled_seconds )

(* --- serve throughput: the query-plane daemon's engine, in-process ---- *)

(* Distinct nonlinear Ratio queries exercise the cold path (parse ->
   fingerprint -> bisection solve -> insert); replaying the same lines
   exercises the warm memo-hit path the daemon answers repeats from.
   Driving Serve.Batch directly keeps socket I/O out of the measurement
   — this is the cache's speedup, which is what the 10x gate pins. *)
let report_serve_throughput () =
  Printf.printf "\n-- serve throughput (cold solve vs warm cache hit) --\n%!";
  let n = if quick then 64 else 256 in
  let lines =
    Array.init n (fun i ->
        match
          Api.Request.make
            ~workload:(Dlt.Cost_model.Power 2.)
            ~total:(100. +. float_of_int i)
            ~platform:(Api.Request.Speeds [| 1.; 2.; 3.; 5.; 8.; 13.; 21.; 34. |])
            ~kind:Api.Request.Ratio ()
        with
        | Ok r -> Obs.Json.to_compact (Api.Request.to_json r)
        | Error e -> failwith ("serve bench request: " ^ e))
  in
  let batch =
    Serve.Batch.create
      { Serve.Batch.default_config with Serve.Batch.cache_capacity = 2 * n }
  in
  let t0 = Obs.Clock.now_ns () in
  Array.iter (fun l -> ignore (Serve.Batch.handle_line batch l)) lines;
  let cold_s = Obs.Clock.ns_to_s (Obs.Clock.now_ns () - t0) in
  let reps = if quick then 50 else 200 in
  let t1 = Obs.Clock.now_ns () in
  for _ = 1 to reps do
    Array.iter (fun l -> ignore (Serve.Batch.handle_line batch l)) lines
  done;
  let warm_s = Obs.Clock.ns_to_s (Obs.Clock.now_ns () - t1) in
  let cold_qps = float_of_int n /. cold_s in
  let warm_qps = float_of_int (n * reps) /. warm_s in
  let ratio = warm_qps /. cold_qps in
  Printf.printf
    "cold %.0f queries/s (%d distinct), warm %.0f queries/s (%d hits): %.1fx\n%!"
    cold_qps n warm_qps (n * reps) ratio;
  assert (Serve.Batch.hits batch = n * reps);
  Obs.Json.Obj
    [
      ("queries", Obs.Json.Int n);
      ("cold_queries_per_sec", Obs.Json.Float cold_qps);
      ("warm_queries_per_sec", Obs.Json.Float warm_qps);
      ("warm_over_cold", Obs.Json.Float ratio);
      ("cache_hits", Obs.Json.Int (Serve.Batch.hits batch));
      ("cache_misses", Obs.Json.Int (Serve.Batch.misses batch));
    ]

let check_serve_gate serve_json =
  if not check_serve then true
  else
    let ratio =
      match Obs.Json.member "warm_over_cold" serve_json with
      | Some (Obs.Json.Float f) -> f
      | Some (Obs.Json.Int i) -> float_of_int i
      | _ -> nan
    in
    if ratio >= 10. then begin
      Printf.printf "\nServe throughput check: OK (warm %.1fx cold >= 10x)\n%!" ratio;
      true
    end
    else begin
      Printf.printf "\nServe throughput check: FAILED\n%!";
      Printf.printf "  REGRESSION warm/cold %.2fx < required 10x floor\n%!" ratio;
      false
    end

(* Gate for [--check-overhead]: instrumentation <= 5% on the big run,
   disabled path <= 1%.  Pure same-process ratios — no committed
   baseline involved, so the gate is machine-independent. *)
let check_overhead_gate obs_overhead =
  if not check_overhead then true
  else
    let num k =
      match Obs.Json.member k obs_overhead with
      | Some (Obs.Json.Float f) -> f
      | Some (Obs.Json.Int i) -> float_of_int i
      | _ -> nan
    in
    let ratio = num "overhead_ratio" in
    let frac = num "disabled_path_fraction" in
    let failures = ref [] in
    if not (ratio <= 1.05) then
      failures :=
        Printf.sprintf "enabled instrumentation costs %.2f%% > 5%% budget"
          ((ratio -. 1.) *. 100.)
        :: !failures;
    if not (frac <= 0.01) then
      failures :=
        Printf.sprintf "disabled path costs %.3f%% > 1%% budget" (frac *. 100.)
        :: !failures;
    match List.rev !failures with
    | [] ->
        Printf.printf "\nObservability overhead check: OK\n%!";
        true
    | failures ->
        Printf.printf "\nObservability overhead check: FAILED\n%!";
        List.iter (fun f -> Printf.printf "  REGRESSION %s\n%!" f) failures;
        false

(* --- lint time: two-phase pipeline vs per-file baseline --------------- *)

(* Three driver runs over the committed tree: the PR-5 per-file
   behaviour (no callgraph, no cache), the full two-phase pipeline on a
   cold cache, and a rerun against the warm cache.  The interprocedural
   layer's whole cost budget is "parse dominates": linking fragments and
   walking the escape set must stay within one extra parse pass, and the
   cache must make reruns cheap enough for a pre-commit hook. *)
let report_lint_time () =
  Printf.printf
    "\n-- lint time (per-file baseline vs two-phase, cold vs warm cache) --\n%!";
  let rec find_root dir =
    if
      Sys.file_exists (Filename.concat dir "dune-project")
      && Sys.file_exists (Filename.concat dir "lib")
    then Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else find_root parent
  in
  match find_root (Sys.getcwd ()) with
  | None ->
      Printf.printf "repo root not found; section skipped\n%!";
      Obs.Json.Null
  | Some root ->
      (* A fresh directory per run keeps the cold measurement honest
         even when a developer cache exists; Cache creates it on first
         store. *)
      let cache_dir = Filename.temp_file "nldl-lint-bench" "" in
      Sys.remove cache_dir;
      let time f =
        let t0 = Obs.Clock.now_ns () in
        let r = f () in
        (r, Obs.Clock.ns_to_s (Obs.Clock.now_ns () - t0))
      in
      let run ~use_cache ~interproc () =
        Lint.Driver.run ~root ~roots:[ "lib"; "bin" ] ~cache_dir ~use_cache
          ~interproc ()
      in
      let baseline, per_file_s = time (run ~use_cache:false ~interproc:false) in
      let cold, cold_s = time (run ~use_cache:true ~interproc:true) in
      let warm, warm_s = time (run ~use_cache:true ~interproc:true) in
      (let rec rm p =
         if Sys.is_directory p then begin
           Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
           Unix.rmdir p
         end
         else Sys.remove p
       in
       if Sys.file_exists cache_dir then rm cache_dir);
      let full_over_per_file = cold_s /. per_file_s in
      let cold_over_warm = cold_s /. warm_s in
      Printf.printf
        "per-file %.0f ms, two-phase cold %.0f ms (%.2fx), warm %.0f ms \
         (%.1fx faster; %d hit, %d miss) over %d files\n%!"
        (per_file_s *. 1e3) (cold_s *. 1e3) full_over_per_file (warm_s *. 1e3)
        cold_over_warm warm.Lint.Driver.cache_hits warm.Lint.Driver.cache_misses
        cold.Lint.Driver.files;
      assert (warm.Lint.Driver.cache_misses = 0);
      assert (Lint.Callgraph.node_count cold.Lint.Driver.graph > 0);
      ignore baseline;
      Obs.Json.Obj
        [
          ("files", Obs.Json.Int cold.Lint.Driver.files);
          ("graph_nodes", Obs.Json.Int (Lint.Callgraph.node_count cold.Lint.Driver.graph));
          ("per_file_seconds", Obs.Json.Float per_file_s);
          ("cold_seconds", Obs.Json.Float cold_s);
          ("warm_seconds", Obs.Json.Float warm_s);
          ("full_over_per_file", Obs.Json.Float full_over_per_file);
          ("cold_over_warm", Obs.Json.Float cold_over_warm);
        ]

let check_lint_time_gate lint_json =
  if not check_lint_time then true
  else
    let num k =
      match Obs.Json.member k lint_json with
      | Some (Obs.Json.Float f) -> f
      | Some (Obs.Json.Int i) -> float_of_int i
      | _ -> nan
    in
    let full = num "full_over_per_file" in
    let speedup = num "cold_over_warm" in
    let failures = ref [] in
    if not (full <= 2.) then
      failures :=
        Printf.sprintf "two-phase pipeline costs %.2fx > 2x per-file baseline"
          full
        :: !failures;
    if not (speedup >= 5.) then
      failures :=
        Printf.sprintf "warm cache only %.1fx faster than cold < 5x floor"
          speedup
        :: !failures;
    match List.rev !failures with
    | [] ->
        Printf.printf
          "\nLint time check: OK (two-phase %.2fx per-file, warm %.1fx cold)\n%!"
          full speedup;
        true
    | failures ->
        Printf.printf "\nLint time check: FAILED\n%!";
        List.iter (fun f -> Printf.printf "  REGRESSION %s\n%!" f) failures;
        false

(* Hard gate on the DES core: (a) the heap must hold a >= 4x (10k) and
   >= 6x (1M, the scale this core exists for) throughput lead over the
   boxed queue measured in this very run — ratios of two timings from
   the same process, so machine speed cancels out; and (b) the headline
   events/sec — heap at 1M and the large MapReduce — must stay within
   10% of the committed artifact.  (b) is a wall-clock rate, so unlike
   the allocation gate it assumes runners comparable to the one that
   produced the committed numbers; ISSUE 7 wants the headline gated
   hard, so it is. *)
let check_throughput fresh =
  match throughput_baseline with
  | None -> true
  | Some (path, committed) ->
      let failures = ref [] in
      let rec get json = function
        | [] -> Some json
        | k :: rest -> (
            match Obs.Json.member k json with
            | Some v -> get v rest
            | None -> None)
      in
      let num = function
        | Some (Obs.Json.Float f) -> Some f
        | Some (Obs.Json.Int i) -> Some (float_of_int i)
        | _ -> None
      in
      List.iter
        (fun (key, floor) ->
          match num (get fresh [ key ]) with
          | Some r when r >= floor -> ()
          | Some r ->
              failures :=
                Printf.sprintf "%s %.2fx < required %.0fx floor" key r floor
                :: !failures
          | None -> failures := Printf.sprintf "%s missing from fresh run" key :: !failures)
        [ ("heap_vs_queue_speedup_10k", 4.0); ("heap_vs_queue_speedup_1m", 6.0) ];
      List.iter
        (fun keys ->
          let name = String.concat "." keys in
          match (num (get fresh keys), num (get committed ("des_throughput" :: keys))) with
          | Some f, Some c ->
              if f < 0.9 *. c then
                failures :=
                  Printf.sprintf "%s: %.3e/s < 90%% of committed %.3e/s" name f c
                  :: !failures
          | _, None ->
              failures :=
                Printf.sprintf
                  "%s missing from %s — regenerate the committed artifact" name path
                :: !failures
          | None, _ -> failures := Printf.sprintf "%s missing from fresh run" name :: !failures)
        [ [ "heap_ops_per_sec_1m" ]; [ "mapreduce"; "events_per_sec" ] ];
      (match List.rev !failures with
      | [] ->
          Printf.printf "\nThroughput check against %s: OK\n%!" path;
          true
      | failures ->
          Printf.printf "\nThroughput check against %s: FAILED\n%!" path;
          List.iter (fun f -> Printf.printf "  REGRESSION %s\n%!" f) failures;
          false)

(* --- Allocation accounting --------------------------------------------- *)

(* One closure per tracked kernel.  Domain counts are pinned (never
   host-derived) and input sizes fixed, so the counters are comparable
   across machines — which is what lets CI hard-fail on regressions
   against the committed baseline.  [Gc.minor_words]/[major_words] count
   the submitting domain, so pool-worker noise is excluded. *)
let alloc_kernels () =
  let n_keys = 200_000 and p = 16 in
  let rng = Core.Rng.create ~seed:21 () in
  let keys = Array.init n_keys (fun _ -> Core.Rng.float rng) in
  let splitters =
    Core.Sample_sort.choose_splitters ~cmp:Float.compare
      (Core.Rng.create ~seed:22 ())
      keys ~p
      ~s:(Core.Sample_sort.default_oversampling ~n:n_keys)
  in
  let mat_rng = Core.Rng.create ~seed:23 () in
  let n_mat = 96 in
  let a = Core.Matrix.random mat_rng ~rows:n_mat ~cols:n_mat in
  let b = Core.Matrix.random mat_rng ~rows:n_mat ~cols:n_mat in
  let star = bench_platform 8 in
  let zones = Core.Zone.for_platform star ~n:n_mat in
  let n_vec = 256 in
  let va = Array.init n_vec (fun _ -> Core.Rng.float mat_rng) in
  let vb = Array.init n_vec (fun _ -> Core.Rng.float mat_rng) in
  let vzones = Core.Zone.for_platform star ~n:n_vec in
  [
    ( "scatter_partition_floats",
      fun () -> ignore (Core.Scatter.partition_floats keys ~splitters) );
    ( "scatter_partition_pool",
      fun () ->
        ignore
          (Core.Scatter.partition_floats_pool ~workers:2
             (Core.Pool.get_global ~at_least:2 ())
             keys ~splitters) );
    ( "multicore_sort",
      fun () -> ignore (Core.Multicore_sort.sort ~domains:2 (Core.Rng.create ~seed:24 ()) keys ~p) );
    ("psrs_sort", fun () -> ignore (Core.Psrs.sort keys ~p));
    ("histogram_splitters", fun () -> ignore (Core.Histogram_sort.splitters keys ~p));
    ("matmul_distributed", fun () -> ignore (Core.Matmul.distributed ~zones a b));
    ( "outer_product_distributed",
      fun () -> ignore (Core.Outer_product.distributed ~zones:vzones va vb) );
    ("parallel_matmul", fun () -> ignore (Core.Parallel_matmul.multiply ~domains:2 a b));
  ]

let report_allocations () =
  Experiments.Report.section "Allocation counters (Gc words per run)";
  let table =
    Numerics.Ascii_table.create ~headers:[ "kernel"; "minor words"; "major words" ]
  in
  Numerics.Ascii_table.set_align table [ Numerics.Ascii_table.Left; Right; Right ];
  let measured =
    List.map
      (fun (name, f) ->
        (* Untimed warm-up so one-time costs (pool spawn, lazy globals)
           are not charged to the kernel. *)
        f ();
        Gc.full_major ();
        let minor0 = Gc.minor_words () in
        let major0 = (Gc.quick_stat ()).Gc.major_words in
        f ();
        let minor = Gc.minor_words () -. minor0 in
        let major = (Gc.quick_stat ()).Gc.major_words -. major0 in
        Numerics.Ascii_table.add_row table
          [ name; Printf.sprintf "%.0f" minor; Printf.sprintf "%.0f" major ];
        (name, minor, major))
      (alloc_kernels ())
  in
  Numerics.Ascii_table.print table;
  let json =
    Obs.Json.Obj
      (List.map
         (fun (name, minor, major) ->
           ( name,
             Obs.Json.Obj
               [ ("minor_words", Obs.Json.Float minor); ("major_words", Obs.Json.Float major) ]
           ))
         measured)
  in
  (measured, json)

(* Kernels whose flat-buffer overhauls are locked in: their baseline
   lines carry a `ratchet` marker, and the gate holds them to the
   baseline itself (no 10% headroom) so the order-of-magnitude win
   cannot silently erode. *)
let ratcheted_kernels = [ "psrs_sort"; "histogram_splitters"; "multicore_sort" ]

(* Baseline file: one `name minor_words major_words [ratchet]` line per
   kernel. *)
let write_alloc_baseline path measured =
  let oc = open_out path in
  output_string oc "# Allocation baseline: kernel minor_words major_words [ratchet]\n";
  output_string oc "# Regenerate with: dune exec bench/main.exe -- --quick --write-alloc-baseline <path>\n";
  output_string oc
    "# `ratchet` pins the kernel to the baseline (no growth tolerance); see DESIGN.md s12.\n";
  List.iter
    (fun (name, minor, major) ->
      let flag = if List.mem name ratcheted_kernels then " ratchet" else "" in
      Printf.fprintf oc "%s %.0f %.0f%s\n" name minor major flag)
    measured;
  close_out oc;
  Printf.printf "Wrote allocation baseline to %s\n%!" path

let read_alloc_baseline path =
  let ic = open_in path in
  let entries = ref [] in
  (try
     while true do
       let line = String.trim (input_line ic) in
       if line <> "" && line.[0] <> '#' then
         match String.split_on_char ' ' line with
         | [ name; minor; major ] ->
             entries := (name, float_of_string minor, float_of_string major, false) :: !entries
         | [ name; minor; major; "ratchet" ] ->
             entries := (name, float_of_string minor, float_of_string major, true) :: !entries
         | _ -> failwith (Printf.sprintf "malformed baseline line: %S" line)
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !entries

(* Hard gate: fail on >10% allocation growth (plus a small absolute
   slack so tiny counters don't flap).  Ratcheted kernels get no
   headroom — any growth past a rounding-level slack fails, and a run
   that comes in far below the baseline prints a reminder to tighten
   it.  Timing is advisory only — shared runners and single-CPU hosts
   make ns/run too noisy to gate on. *)
let check_alloc_baseline path measured =
  let failures = ref [] in
  List.iter
    (fun (name, base_minor, base_major, ratchet) ->
      match List.find_opt (fun (n, _, _) -> n = name) measured with
      | None -> failures := Printf.sprintf "%s: kernel missing from bench run" name :: !failures
      | Some (_, minor, major) ->
          let tolerance = if ratchet then 1.0 else 1.10 in
          let slack = if ratchet then 512. else 4096. in
          let label = if ratchet then "ratcheted baseline" else "baseline" in
          let headroom = if ratchet then "+0%" else "+10%" in
          let over v base = v > (base *. tolerance) +. slack in
          if over minor base_minor then
            failures :=
              Printf.sprintf "%s: minor words %.0f > %.0f (%s %.0f %s)" name minor
                ((base_minor *. tolerance) +. slack)
                label base_minor headroom
              :: !failures;
          if over major base_major then
            failures :=
              Printf.sprintf "%s: major words %.0f > %.0f (%s %.0f %s)" name major
                ((base_major *. tolerance) +. slack)
                label base_major headroom
              :: !failures;
          if ratchet && minor < 0.5 *. base_minor then
            Printf.printf
              "  NOTE %s: minor words %.0f are far below the ratcheted baseline %.0f — \
               regenerate the baseline to lock in the win\n%!"
              name minor base_minor)
    (read_alloc_baseline path);
  match List.rev !failures with
  | [] ->
      Printf.printf "\nAllocation check against %s: OK\n%!" path;
      true
  | failures ->
      Printf.printf "\nAllocation check against %s: FAILED\n%!" path;
      List.iter (fun f -> Printf.printf "  REGRESSION %s\n%!" f) failures;
      false

let run_micro_benchmarks () =
  Experiments.Report.section "Bechamel micro-benchmarks";
  let tests =
    [
      test_event_queue;
      test_event_heap;
      test_peri_sum;
      test_peri_max;
      test_demand_driven;
      test_nonlinear_solver;
      test_sample_sort;
      test_histogram_sort;
      test_psrs;
      test_distributed_matmul;
      test_strassen;
      test_cannon;
      test_lu;
      test_cholesky;
      test_karatsuba;
      test_mapreduce;
    ]
  in
  let grouped = Test.make_grouped ~name:"nldl" tests in
  let quota = if quick then Time.second 0.2 else Time.second 0.5 in
  let cfg = Benchmark.cfg ~limit:2000 ~quota ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] grouped in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let table = Numerics.Ascii_table.create ~headers:[ "kernel"; "time/run"; "r^2" ] in
  Numerics.Ascii_table.set_align table [ Numerics.Ascii_table.Left; Right; Right ];
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> String.compare a b) rows in
  List.iter
    (fun (name, ols) ->
      let estimate =
        match Analyze.OLS.estimates ols with
        | Some (e :: _) -> e
        | Some [] | None -> Float.nan
      in
      let human =
        if estimate > 1e9 then Printf.sprintf "%.3f s" (estimate /. 1e9)
        else if estimate > 1e6 then Printf.sprintf "%.3f ms" (estimate /. 1e6)
        else if estimate > 1e3 then Printf.sprintf "%.3f us" (estimate /. 1e3)
        else Printf.sprintf "%.1f ns" estimate
      in
      let r2 =
        match Analyze.OLS.r_square ols with
        | Some r -> Printf.sprintf "%.4f" r
        | None -> "-"
      in
      Numerics.Ascii_table.add_row table [ name; human; r2 ])
    rows;
  Numerics.Ascii_table.print table;
  List.filter_map
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some (e :: _) -> Some (name, e)
      | Some [] | None -> None)
    rows

(* --- Part 2: paper reproduction ---------------------------------------- *)

let run_e1 () =
  let rows = Experiments.Nonlinear_exp.run () in
  Experiments.Nonlinear_exp.print rows

let run_e2 () =
  let sizes = if quick then [ 10_000; 100_000 ] else [ 10_000; 100_000; 1_000_000 ] in
  let rows = Experiments.Sorting_exp.run ~sizes () in
  Experiments.Sorting_exp.print rows;
  let hetero = Experiments.Sorting_exp.run_hetero ~trials:(if quick then 2 else 5) () in
  Experiments.Sorting_exp.print_hetero hetero

let run_e3 () =
  Experiments.Ratio_exp.print_bimodal (Experiments.Ratio_exp.run_bimodal ());
  Experiments.Ratio_exp.print_general
    (Experiments.Ratio_exp.run_general ~trials:(if quick then 5 else 20) ())

let run_fig4 () =
  let trials = if quick then 10 else 100 in
  let figure tag profile =
    let points = Experiments.Fig4.sweep ~trials profile in
    Experiments.Fig4.print
      ~title:
        (Printf.sprintf "Figure 4(%s): ratio to lower bound, %s speeds (%d trials/point)"
           tag (Core.Profiles.name profile) trials)
      points
  in
  figure "a" Core.Profiles.paper_homogeneous;
  figure "b" Core.Profiles.paper_uniform;
  figure "c" Core.Profiles.paper_lognormal

let run_e4 () =
  let trials = if quick then 3 else 10 in
  List.iter
    (fun profile ->
      Experiments.Time_exp.print
        ~profile:(Core.Profiles.name profile)
        (Experiments.Time_exp.run ~trials profile))
    [ Core.Profiles.paper_uniform; Core.Profiles.paper_lognormal ]

let run_ablation () =
  let rows =
    Experiments.Mapreduce_exp.run ~trials:(if quick then 1 else 3)
      ~n:(if quick then 256 else 512) ()
  in
  Experiments.Mapreduce_exp.print rows;
  if quick then begin
    Experiments.Ablations.print_partitioners
      (Experiments.Ablations.partitioners ~trials:5 ());
    Experiments.Ablations.print_summa (Experiments.Ablations.summa_panels ~n:32 ());
    Experiments.Ablations.print_c25d (Experiments.Ablations.c25d ());
    Experiments.Ablations.print_splitters
      (Experiments.Ablations.splitters ~n:20_000 ());
    Experiments.Ablations.print_speculation (Experiments.Ablations.speculation ~trials:5 ());
    Experiments.Ablations.print_ordering (Experiments.Ablations.ordering ())
  end
  else Experiments.Ablations.print_all ()

let () =
  Printf.printf "nldl bench harness (version %s)%s\n%!" Core.version
    (if quick then " [quick mode]" else "");
  if trace_path <> None then Obs.Trace.set_enabled true;
  if metrics_on then Obs.Metrics.set_enabled true;
  let kernels = run_micro_benchmarks () in
  let multicore = report_multicore () in
  let sort_throughput = report_sort_throughput () in
  let pool = report_pool_overhead () in
  let fig4_scaling = report_fig4_scaling () in
  (* obs_overhead first: it times the same big MapReduce under
     controlled flags, and its best pass feeds the des_throughput
     headline (see report_des_throughput). *)
  let obs_overhead, best_mr_seconds = report_obs_overhead () in
  let des_throughput = report_des_throughput ~best_mr_seconds () in
  let serve_throughput = report_serve_throughput () in
  let lint_time = report_lint_time () in
  let alloc_measured, allocations = report_allocations () in
  (match write_alloc_path with
  | Some path -> write_alloc_baseline path alloc_measured
  | None -> ());
  run_e1 ();
  run_e2 ();
  run_e3 ();
  run_fig4 ();
  run_e4 ();
  run_ablation ();
  let json =
    Obs.Json.Obj
      ([
         (* Envelope header shared with the Api.Response schema, so the
            artifact declares its own version like every other JSON
            surface. *)
         ("schema_version", Obs.Json.Int Api.Response.schema_version);
         ("provenance", Obs.Json.Obj [ ("solver", Obs.Json.String "nldl.bench") ]);
         ("version", Obs.Json.String Core.version);
         ("quick", Obs.Json.Bool quick);
         ( "kernels_ns_per_run",
           Obs.Json.Obj (List.map (fun (name, ns) -> (name, Obs.Json.Float ns)) kernels) );
         ("pool_overhead", pool);
         ("multicore_sort", multicore);
         ("sort_throughput", sort_throughput);
         ("fig4_scaling", fig4_scaling);
         ("des_throughput", des_throughput);
         ("serve_throughput", serve_throughput);
         ("lint_time", lint_time);
         ("obs_overhead", obs_overhead);
         ("allocations", allocations);
       ]
      @ if metrics_on then [ ("metrics", Obs.Export.metrics_json ()) ] else [])
  in
  Obs.Json.write_file "BENCH_results.json" json;
  Printf.printf "\nWrote BENCH_results.json\n%!";
  (match trace_path with
  | None -> ()
  | Some path ->
      Obs.Trace.set_enabled false;
      Obs.Export.write_trace path;
      let dropped = Obs.Trace.dropped () in
      if dropped > 0 then
        Printf.printf "Trace ring buffers dropped %d events (oldest overwritten)\n%!" dropped;
      Printf.printf "Wrote trace to %s\n%!" path);
  let alloc_ok =
    match check_alloc_path with
    | Some path -> check_alloc_baseline path alloc_measured
    | None -> true
  in
  let throughput_ok = check_throughput des_throughput in
  let serve_ok = check_serve_gate serve_throughput in
  let overhead_ok = check_overhead_gate obs_overhead in
  let lint_ok = check_lint_time_gate lint_time in
  Printf.printf "\nDone.\n%!";
  if not (alloc_ok && throughput_ok && serve_ok && overhead_ok && lint_ok) then
    exit 1
